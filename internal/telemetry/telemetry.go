// Package telemetry is the per-rank instrumentation subsystem: monotonic
// span timers and counters keyed by solver phase, a ring-buffered event
// trace exportable as Chrome trace-event JSON, and cross-rank aggregation
// (min/max/mean/p99 per phase per step window) assembled from snapshots
// gathered over the in-process MPI runtime — the measured side of the
// paper's Eq. 7 decomposition (Tstep = Tcomp + Tcomm + Tsync + γTout),
// which until now the repo validated only through end-to-end timings.
//
// The disabled path is a nil *Recorder: every probe method has a nil
// receiver check and returns immediately without reading the clock or
// allocating, so instrumented hot loops cost one predictable branch when
// telemetry is off. When enabled, span totals go to per-phase atomic
// accumulators (safe for concurrent Ends from worker-pool goroutines),
// trace events to a fixed-capacity mutex-guarded ring that overwrites the
// oldest events when full, and message counters to a per-peer table.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one instrumented activity of a solver step.
type Phase uint8

const (
	// Velocity is the velocity-update kernel (boundary strips and
	// interior under the overlap model).
	Velocity Phase = iota
	// Stress is the elastic stress-update kernel.
	Stress
	// Attenuation is the coarse-grained memory-variable update.
	Attenuation
	// Boundary covers absorbing-boundary and free-surface work (PML
	// zones, sponge taper, FS2 images).
	Boundary
	// Pack is halo-face packing into message buffers.
	Pack
	// Send is message submission to the runtime.
	Send
	// Recv is blocking receive / wait-for-completion time, including the
	// skew spent waiting on a neighbor that is still computing (the
	// MPI_Waitall term of the paper's Tcomm).
	Recv
	// Unpack is ghost-region unpacking from received buffers.
	Unpack
	// Sync is explicit barrier time (the synchronous model's Tsync).
	Sync
	// Output is per-step observable extraction (receivers, PGV folding).
	Output
	// IO is indexed file-view read/write time (internal/mpiio).
	IO
	// Checkpoint is checkpoint save/restore serialization time.
	Checkpoint
	// QueueWait is the worker-pool interval between batch submission and
	// the first tile starting (internal/core/sched).
	QueueWait
	// Execute is the worker-pool interval between the first tile
	// starting and the batch completing.
	Execute
	// Recovery is coordinated rollback time after an injected or real
	// fault: electing the restart step, reloading the checkpoint, and
	// resetting the runtime (internal/ft).
	Recovery
	// Interp is rate-boundary ghost interpolation time under multi-rate
	// local time stepping: blending buffered coarse-neighbor face
	// sections in time and writing them into the ghost region.
	Interp
	// Collective is time inside mpi tree collectives (Bcast, Reduce,
	// Allreduce): the dt/vp-max reductions of solver setup and the
	// timing/moment-rate reductions of result collection, which were
	// previously invisible to the phase split. Barriers are not counted
	// here — the solver wraps them in Sync spans.
	Collective
	// Agg is the two-phase aggregated I/O layer (internal/agg): shipping
	// file-view segments to the writer ranks, coalescing them into
	// stripe-aligned extents, and issuing the aggregated writes.
	Agg
	// Job is one ensemble-farm worker attempt at a scenario: the solver
	// run plus artifact encode/store, excluding queue wait and retry
	// backoff (internal/farm).
	Job
	// Serve is hazard-service front-end query handling time: admission,
	// store lookup with checksum verification, and surrogate evaluation
	// (internal/farm server).
	Serve

	numPhases
)

// NumPhases is the number of defined phases.
const NumPhases = int(numPhases)

var phaseNames = [NumPhases]string{
	"velocity", "stress", "attenuation", "boundary", "pack", "send",
	"recv", "unpack", "sync", "output", "io", "checkpoint",
	"queue-wait", "execute", "recovery", "interp", "collective", "agg",
	"job", "serve",
}

func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// PhaseByName returns the phase with the given name.
func PhaseByName(name string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), true
		}
	}
	return 0, false
}

// epoch anchors every timestamp. All ranks of the in-process runtime
// share it, so traces and message latencies line up across ranks without
// clock synchronization.
var epoch = time.Now()

// Now returns monotonic nanoseconds since the process-wide telemetry
// epoch (the message-latency clock).
func Now() int64 { return int64(time.Since(epoch)) }

// Options enables telemetry on a run.
type Options struct {
	// TraceEvents is the per-rank event-ring capacity; when the ring
	// fills, the oldest events are overwritten (and counted as dropped).
	// 0 keeps span accumulators, step samples and message counters
	// without an event trace.
	TraceEvents int
}

// Event is one completed span in a rank's trace.
type Event struct {
	Rank  int
	Phase Phase
	Start int64 // ns since the telemetry epoch
	Dur   int64 // ns
}

// Neighbor accumulates one peer's message traffic as seen by one rank.
type Neighbor struct {
	Peer       int
	SentMsgs   int64
	SentFloats int64
	RecvMsgs   int64
	RecvFloats int64
	// Latency is measured from the sender's submission to the receiver's
	// match (so it includes time the receiver spent not yet asking), over
	// the RecvMsgs that carried a send stamp.
	LatencySumNs int64
	LatencyMaxNs int64
	LatencyN     int64
}

type phaseAccum struct {
	ns atomic.Int64
	n  atomic.Int64
}

// Recorder is one rank's telemetry sink. All probe methods are safe on a
// nil receiver (the disabled path) and safe for concurrent use from the
// rank's worker-pool goroutines. StepEnd and the snapshot methods must be
// called from the rank's main goroutine.
type Recorder struct {
	rank int
	acc  [NumPhases]phaseAccum

	// Per-step sample windows, owner goroutine only.
	prev  [NumPhases]int64
	steps [][NumPhases]int64

	// Event ring. ringCap is immutable after NewRecorder so the enabled
	// check in Span.End stays lock-free; ring/pushed are guarded by ringMu.
	ringCap int
	ringMu  sync.Mutex
	ring    []Event
	pushed  uint64

	// Per-neighbor message counters.
	nbrMu sync.Mutex
	nbr   map[int]*Neighbor

	// Named counters (queue depth high-water, retries, breaker trips,
	// shed queries, ...). Process-local: they are NOT part of the gathered
	// snapshot encoding — the ensemble farm that uses them runs its
	// supervisor in one process.
	cntMu sync.Mutex
	cnt   map[string]int64
}

// NewRecorder creates a recorder for the given rank. traceEvents sets the
// event-ring capacity; 0 disables event tracing (accumulators, samples
// and counters stay active).
func NewRecorder(rank, traceEvents int) *Recorder {
	r := &Recorder{rank: rank, nbr: map[int]*Neighbor{}}
	if traceEvents > 0 {
		r.ringCap = traceEvents
		r.ring = make([]Event, 0, traceEvents)
	}
	return r
}

// Rank returns the recorder's rank, or -1 for the nil recorder.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Span is an open interval started by Recorder.Span. The zero Span (from
// a nil recorder) is a no-op.
type Span struct {
	r     *Recorder
	phase Phase
	t0    time.Time
}

// Span starts a span of phase p. On a nil recorder it returns the no-op
// zero Span without reading the clock.
func (r *Recorder) Span(p Phase) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, phase: p, t0: time.Now()}
}

// End closes the span, folding its duration into the phase accumulator
// and, when tracing is enabled, appending one event to the ring. Safe to
// call concurrently with other Ends.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := int64(time.Since(s.t0))
	a := &s.r.acc[s.phase]
	a.ns.Add(d)
	a.n.Add(1)
	if s.r.ringCap > 0 {
		s.r.push(Event{Rank: s.r.rank, Phase: s.phase, Start: int64(s.t0.Sub(epoch)), Dur: d})
	}
}

func (r *Recorder) push(e Event) {
	r.ringMu.Lock()
	if c := r.ringCap; c > 0 {
		if len(r.ring) < c {
			r.ring = append(r.ring, e)
		} else {
			r.ring[r.pushed%uint64(c)] = e
		}
		r.pushed++
	}
	r.ringMu.Unlock()
}

// AddDur folds an externally measured duration into a phase accumulator
// without emitting a trace event — used by the scheduler's queue-wait /
// execute split, where the interval endpoints are observed by different
// goroutines.
func (r *Recorder) AddDur(p Phase, d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.acc[p].ns.Add(int64(d))
	r.acc[p].n.Add(1)
}

// PhaseTotal returns the accumulated seconds and span count of phase p.
func (r *Recorder) PhaseTotal(p Phase) (sec float64, count int64) {
	if r == nil {
		return 0, 0
	}
	return float64(r.acc[p].ns.Load()) / 1e9, r.acc[p].n.Load()
}

// CountSent records one outgoing message of n float32 values to peer.
func (r *Recorder) CountSent(peer, n int) {
	if r == nil {
		return
	}
	r.nbrMu.Lock()
	nb := r.neighborLocked(peer)
	nb.SentMsgs++
	nb.SentFloats += int64(n)
	r.nbrMu.Unlock()
}

// CountRecv records one received message of n float32 values from peer.
// latencyNs is the send-to-match latency (<= 0: no stamp, not counted).
func (r *Recorder) CountRecv(peer, n int, latencyNs int64) {
	if r == nil {
		return
	}
	r.nbrMu.Lock()
	nb := r.neighborLocked(peer)
	nb.RecvMsgs++
	nb.RecvFloats += int64(n)
	if latencyNs > 0 {
		nb.LatencySumNs += latencyNs
		nb.LatencyN++
		if latencyNs > nb.LatencyMaxNs {
			nb.LatencyMaxNs = latencyNs
		}
	}
	r.nbrMu.Unlock()
}

func (r *Recorder) neighborLocked(peer int) *Neighbor {
	nb := r.nbr[peer]
	if nb == nil {
		nb = &Neighbor{Peer: peer}
		r.nbr[peer] = nb
	}
	return nb
}

// Neighbors returns the per-peer counters ordered by peer rank.
func (r *Recorder) Neighbors() []Neighbor {
	if r == nil {
		return nil
	}
	r.nbrMu.Lock()
	out := make([]Neighbor, 0, len(r.nbr))
	for _, nb := range r.nbr {
		out = append(out, *nb)
	}
	r.nbrMu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Peer > out[j].Peer; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// AddCount adds n to the named counter, creating it at zero on first use.
// Safe for concurrent use; a nil recorder discards the count.
func (r *Recorder) AddCount(name string, n int64) {
	if r == nil {
		return
	}
	r.cntMu.Lock()
	if r.cnt == nil {
		r.cnt = map[string]int64{}
	}
	r.cnt[name] += n
	r.cntMu.Unlock()
}

// MaxCount raises the named counter to v if v exceeds its current value —
// the high-water-mark fold used for queue depth.
func (r *Recorder) MaxCount(name string, v int64) {
	if r == nil {
		return
	}
	r.cntMu.Lock()
	if r.cnt == nil {
		r.cnt = map[string]int64{}
	}
	if v > r.cnt[name] {
		r.cnt[name] = v
	}
	r.cntMu.Unlock()
}

// Count returns the named counter's value (0 if never touched or nil
// recorder).
func (r *Recorder) Count(name string) int64 {
	if r == nil {
		return 0
	}
	r.cntMu.Lock()
	defer r.cntMu.Unlock()
	return r.cnt[name]
}

// Counts returns a copy of all named counters.
func (r *Recorder) Counts() map[string]int64 {
	if r == nil {
		return nil
	}
	r.cntMu.Lock()
	defer r.cntMu.Unlock()
	out := make(map[string]int64, len(r.cnt))
	for k, v := range r.cnt {
		out[k] = v
	}
	return out
}

// StepEnd closes one step window: the per-phase deltas since the previous
// call become one aggregation sample row. Call between solver steps from
// the rank's main goroutine; spans still open on other goroutines fold
// into whichever window observes their End.
func (r *Recorder) StepEnd() {
	if r == nil {
		return
	}
	var row [NumPhases]int64
	for p := 0; p < NumPhases; p++ {
		cur := r.acc[p].ns.Load()
		row[p] = cur - r.prev[p]
		r.prev[p] = cur
	}
	r.steps = append(r.steps, row)
}

// Steps returns the number of closed step windows.
func (r *Recorder) Steps() int {
	if r == nil {
		return 0
	}
	return len(r.steps)
}

// Events returns the ring contents in push order plus the count of events
// overwritten after the ring filled.
func (r *Recorder) Events() (events []Event, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	c := r.ringCap
	if c == 0 || r.pushed == 0 {
		return nil, 0
	}
	if r.pushed <= uint64(c) {
		return append([]Event(nil), r.ring...), 0
	}
	head := int(r.pushed % uint64(c))
	out := make([]Event, 0, c)
	out = append(out, r.ring[head:]...)
	out = append(out, r.ring[:head]...)
	return out, r.pushed - uint64(c)
}
