//go:build !race

package telemetry

// RaceEnabled reports whether the binary was built with the race detector.
const RaceEnabled = false
