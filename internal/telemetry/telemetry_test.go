package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := 0; p < NumPhases; p++ {
		name := Phase(p).String()
		if name == "" || strings.HasPrefix(name, "phase(") {
			t.Fatalf("phase %d has no name", p)
		}
		if seen[name] {
			t.Fatalf("duplicate phase name %q", name)
		}
		seen[name] = true
		got, ok := PhaseByName(name)
		if !ok || got != Phase(p) {
			t.Fatalf("PhaseByName(%q) = %v, %v", name, got, ok)
		}
	}
	if Phase(NumPhases).String() != fmt.Sprintf("phase(%d)", NumPhases) {
		t.Errorf("out-of-range String = %q", Phase(NumPhases).String())
	}
	if _, ok := PhaseByName("no-such-phase"); ok {
		t.Error("PhaseByName accepted an unknown name")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Rank() != -1 {
		t.Errorf("nil Rank = %d", r.Rank())
	}
	sp := r.Span(Velocity)
	sp.End() // must not panic
	r.AddDur(Stress, time.Second)
	r.CountSent(1, 10)
	r.CountRecv(1, 10, 5)
	r.StepEnd()
	if sec, n := r.PhaseTotal(Velocity); sec != 0 || n != 0 {
		t.Errorf("nil PhaseTotal = %g, %d", sec, n)
	}
	if r.Neighbors() != nil {
		t.Error("nil Neighbors not nil")
	}
	if r.Steps() != 0 {
		t.Error("nil Steps not 0")
	}
	if ev, d := r.Events(); ev != nil || d != 0 {
		t.Error("nil Events not empty")
	}
	if r.EncodeSnapshot() != nil {
		t.Error("nil EncodeSnapshot not nil")
	}
}

// The disabled path must not allocate: the hot loops run these probes every
// tile of every step.
func TestNilRecorderProbesDoNotAllocate(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(100, func() {
		sp := r.Span(Velocity)
		sp.End()
		r.AddDur(Stress, time.Microsecond)
		r.CountSent(1, 8)
		r.CountRecv(1, 8, 1)
	}); n != 0 {
		t.Fatalf("nil-recorder probes allocate %.1f per run", n)
	}
}

// The enabled path must not allocate either once the neighbor entry exists
// and the ring is at capacity — telemetry-on runs must stay GC-quiet.
func TestEnabledProbesDoNotAllocate(t *testing.T) {
	r := NewRecorder(0, 4)
	r.CountSent(1, 1)
	r.CountRecv(1, 1, 1)
	for i := 0; i < 8; i++ { // fill the ring so push overwrites
		sp := r.Span(Pack)
		sp.End()
	}
	if n := testing.AllocsPerRun(100, func() {
		sp := r.Span(Velocity)
		sp.End()
		r.AddDur(Stress, time.Microsecond)
		r.CountSent(1, 8)
		r.CountRecv(1, 8, 1)
	}); n != 0 {
		t.Fatalf("enabled probes allocate %.1f per run", n)
	}
}

func TestSpanAccumulation(t *testing.T) {
	r := NewRecorder(2, 0)
	if r.Rank() != 2 {
		t.Fatalf("Rank = %d", r.Rank())
	}
	sp := r.Span(Velocity)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	sec, n := r.PhaseTotal(Velocity)
	if n != 1 || sec <= 0 {
		t.Fatalf("PhaseTotal = %g, %d", sec, n)
	}
	r.AddDur(Velocity, 10*time.Millisecond)
	sec2, n2 := r.PhaseTotal(Velocity)
	if n2 != 2 || sec2 < sec+0.0099 {
		t.Fatalf("after AddDur: %g, %d", sec2, n2)
	}
	r.AddDur(Velocity, 0)
	r.AddDur(Velocity, -time.Second)
	if _, n3 := r.PhaseTotal(Velocity); n3 != 2 {
		t.Error("non-positive AddDur counted")
	}
	// No ring: Events stays empty.
	if ev, _ := r.Events(); len(ev) != 0 {
		t.Errorf("ringless recorder has %d events", len(ev))
	}
}

func TestStepWindows(t *testing.T) {
	r := NewRecorder(0, 0)
	r.AddDur(Stress, 5*time.Millisecond)
	r.StepEnd()
	r.AddDur(Stress, 7*time.Millisecond)
	r.AddDur(Pack, 1*time.Millisecond)
	r.StepEnd()
	if r.Steps() != 2 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	if r.steps[0][Stress] != int64(5*time.Millisecond) {
		t.Errorf("window 0 stress = %d", r.steps[0][Stress])
	}
	if r.steps[1][Stress] != int64(7*time.Millisecond) {
		t.Errorf("window 1 stress delta = %d (not a delta?)", r.steps[1][Stress])
	}
	if r.steps[1][Pack] != int64(time.Millisecond) {
		t.Errorf("window 1 pack = %d", r.steps[1][Pack])
	}
}

func TestEventRingWrap(t *testing.T) {
	r := NewRecorder(1, 4)
	for p := 0; p < 7; p++ {
		sp := r.Span(Phase(p % NumPhases))
		sp.End()
	}
	ev, dropped := r.Events()
	if len(ev) != 4 || dropped != 3 {
		t.Fatalf("Events = %d events, %d dropped", len(ev), dropped)
	}
	// Push order: the oldest retained first (phases 3,4,5,6).
	for i, e := range ev {
		if e.Phase != Phase(i+3) {
			t.Fatalf("event %d phase %v, want %v", i, e.Phase, Phase(i+3))
		}
		if e.Rank != 1 || e.Start < 0 || e.Dur < 0 {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
	}
}

func TestNeighborCounters(t *testing.T) {
	r := NewRecorder(0, 0)
	r.CountSent(3, 100)
	r.CountSent(1, 50)
	r.CountSent(3, 100)
	r.CountRecv(3, 80, 2000)
	r.CountRecv(3, 80, 4000)
	r.CountRecv(1, 10, 0) // no stamp: not counted in latency
	nbrs := r.Neighbors()
	if len(nbrs) != 2 || nbrs[0].Peer != 1 || nbrs[1].Peer != 3 {
		t.Fatalf("Neighbors = %+v", nbrs)
	}
	n3 := nbrs[1]
	if n3.SentMsgs != 2 || n3.SentFloats != 200 || n3.RecvMsgs != 2 || n3.RecvFloats != 160 {
		t.Errorf("peer 3 counters: %+v", n3)
	}
	if n3.LatencyN != 2 || n3.LatencySumNs != 6000 || n3.LatencyMaxNs != 4000 {
		t.Errorf("peer 3 latency: %+v", n3)
	}
	if nbrs[0].LatencyN != 0 {
		t.Errorf("unstamped receive counted toward latency: %+v", nbrs[0])
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRecorder(3, 8)
	r.AddDur(Velocity, 5*time.Millisecond)
	r.AddDur(Stress, 3*time.Millisecond)
	r.StepEnd()
	r.AddDur(Velocity, 2*time.Millisecond)
	r.StepEnd()
	r.CountSent(1, 100)
	r.CountRecv(1, 50, 1000)
	r.CountRecv(2, 10, 0)
	for i := 0; i < 3; i++ {
		sp := r.Span(Pack)
		sp.End()
	}

	s, err := DecodeSnapshot(r.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank != 3 {
		t.Errorf("rank = %d", s.Rank)
	}
	if len(s.Steps) != 2 ||
		s.Steps[0][Velocity] != int64(5*time.Millisecond) ||
		s.Steps[0][Stress] != int64(3*time.Millisecond) ||
		s.Steps[1][Velocity] != int64(2*time.Millisecond) {
		t.Errorf("steps = %+v", s.Steps)
	}
	if s.Counts[Velocity] != 2 || s.Counts[Pack] != 3 {
		t.Errorf("counts = %+v", s.Counts)
	}
	if len(s.Neighbors) != 2 ||
		s.Neighbors[0] != (Neighbor{Peer: 1, SentMsgs: 1, SentFloats: 100,
			RecvMsgs: 1, RecvFloats: 50, LatencySumNs: 1000, LatencyMaxNs: 1000, LatencyN: 1}) ||
		s.Neighbors[1] != (Neighbor{Peer: 2, RecvMsgs: 1, RecvFloats: 10}) {
		t.Errorf("neighbors = %+v", s.Neighbors)
	}
	if len(s.Events) != 3 || s.Dropped != 0 {
		t.Errorf("events = %d, dropped %d", len(s.Events), s.Dropped)
	}
	for _, e := range s.Events {
		if e.Rank != 3 || e.Phase != Pack {
			t.Errorf("event %+v", e)
		}
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	if _, err := DecodeSnapshot([]float32{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	// Header only: claims zero of everything but is missing the per-phase
	// span counts that always follow.
	var hdr []float32
	for _, v := range []float64{0, 0, 0, 0, 0} {
		hdr = appendWide(hdr, v)
	}
	if _, err := DecodeSnapshot(hdr); err == nil {
		t.Error("payload truncated in counts accepted")
	}
	// Corrupt header: claims more step rows than the payload could carry.
	var big []float32
	for _, v := range []float64{0, 1000, 0, 0, 0} {
		big = appendWide(big, v)
	}
	if _, err := DecodeSnapshot(big); err == nil {
		t.Error("oversized header accepted")
	}
	// Out-of-range event phase.
	var bad []float32
	for _, v := range []float64{0, 0, 0, 1, 0} {
		bad = appendWide(bad, v)
	}
	for p := 0; p < NumPhases; p++ {
		bad = appendWide(bad, 0)
	}
	bad = appendWide(bad, 99) // phase
	bad = appendWide(bad, 1)  // start
	bad = appendWide(bad, 1)  // dur
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("corrupt event phase accepted")
	}
	// BuildReport propagates decode failures.
	if _, err := BuildReport([][]float32{{1, 2, 3}}); err == nil {
		t.Error("BuildReport accepted a corrupt payload")
	}
}

func TestBuildReportAggregation(t *testing.T) {
	mk := func(rank int, stepsMs ...int) []float32 {
		r := NewRecorder(rank, 0)
		for _, ms := range stepsMs {
			r.AddDur(Velocity, time.Duration(ms)*time.Millisecond)
			r.StepEnd()
		}
		return r.EncodeSnapshot()
	}
	rep, err := BuildReport([][]float32{
		mk(0, 10, 20, 30, 40),
		nil, // a rank with telemetry disabled is skipped
		mk(1, 20, 20, 20, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 2 || rep.StepWindows != 4 {
		t.Fatalf("ranks %d windows %d", rep.Ranks, rep.StepWindows)
	}
	v := rep.Stat(Velocity)
	tol := 1e-9
	if v.Spans != 8 {
		t.Errorf("spans = %d", v.Spans)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"total", v.TotalSec, 0.18},
		{"maxRank", v.MaxRankSec, 0.10},
		{"mean", v.MeanSec, 0.0225},
		{"min", v.MinSec, 0.01},
		{"max", v.MaxSec, 0.04},
		{"p99", v.P99Sec, 0.04},
	}
	for _, c := range checks {
		if c.got < c.want-tol || c.got > c.want+tol {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if got := rep.MeanStepSec(Velocity, Stress); got < 0.0225-tol || got > 0.0225+tol {
		t.Errorf("MeanStepSec = %g", got)
	}
	// Untouched phase: zero stats but a valid name.
	if s := rep.Stat(Checkpoint); s.Spans != 0 || s.Phase != "checkpoint" {
		t.Errorf("idle phase stat = %+v", s)
	}
	// Nil/out-of-range access is safe.
	var nilRep *Report
	if s := nilRep.Stat(Velocity); s.Phase != "velocity" || s.Spans != 0 {
		t.Errorf("nil report stat = %+v", s)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct{ q, want float64 }{
		{0.5, 5}, {0.99, 10}, {0.1, 1}, {1.0, 10}, {0.0, 1},
	} {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	ra := NewRecorder(0, 8)
	rb := NewRecorder(1, 8)
	for _, r := range []*Recorder{ra, rb} {
		sp := r.Span(Velocity)
		time.Sleep(time.Millisecond)
		sp.End()
		sp = r.Span(Recv)
		sp.End()
	}
	rep, err := BuildReport([][]float32{ra.EncodeSnapshot(), rb.EncodeSnapshot()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var complete, meta int
	sawVelocity := false
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Name == "velocity" && e.Pid == 0 {
				sawVelocity = true
				if e.Tid != int(Velocity) || e.Dur <= 0 {
					t.Errorf("velocity event malformed: %+v", e)
				}
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected ph %q", e.Ph)
		}
	}
	if complete != 4 {
		t.Errorf("complete events = %d, want 4", complete)
	}
	// Per rank: one process_name plus NumPhases thread_name records.
	if meta != 2*(1+NumPhases) {
		t.Errorf("metadata events = %d, want %d", meta, 2*(1+NumPhases))
	}
	if !sawVelocity {
		t.Error("rank 0 velocity event missing")
	}
}

func TestNowIsMonotonic(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Errorf("Now not increasing: %d then %d", a, b)
	}
}
