package telemetry

import (
	"sync"
	"testing"
)

func TestNamedCounters(t *testing.T) {
	r := NewRecorder(0, 0)
	r.AddCount("farm.retries", 2)
	r.AddCount("farm.retries", 3)
	r.MaxCount("farm.queue_depth_hw", 4)
	r.MaxCount("farm.queue_depth_hw", 2) // lower: must not regress
	r.MaxCount("farm.queue_depth_hw", 9)
	if got := r.Count("farm.retries"); got != 5 {
		t.Fatalf("retries = %d, want 5", got)
	}
	if got := r.Count("farm.queue_depth_hw"); got != 9 {
		t.Fatalf("queue high-water = %d, want 9", got)
	}
	if got := r.Count("never-touched"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	m := r.Counts()
	if len(m) != 2 || m["farm.retries"] != 5 {
		t.Fatalf("Counts() = %v", m)
	}
	// The returned map is a copy.
	m["farm.retries"] = 99
	if r.Count("farm.retries") != 5 {
		t.Fatal("Counts() returned a live reference")
	}
}

func TestNamedCountersNilRecorder(t *testing.T) {
	var r *Recorder
	r.AddCount("x", 1) // must not panic
	r.MaxCount("x", 1)
	if r.Count("x") != 0 {
		t.Fatal("nil recorder counted")
	}
	if r.Counts() != nil {
		t.Fatal("nil recorder returned counters")
	}
}

func TestNamedCountersConcurrent(t *testing.T) {
	r := NewRecorder(0, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.AddCount("hits", 1)
				r.MaxCount("hw", int64(w*100+i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Count("hits"); got != 800 {
		t.Fatalf("hits = %d, want 800", got)
	}
	if got := r.Count("hw"); got != 799 {
		t.Fatalf("hw = %d, want 799", got)
	}
}

func TestFarmPhasesNamed(t *testing.T) {
	for _, p := range []Phase{Job, Serve} {
		name := p.String()
		got, ok := PhaseByName(name)
		if !ok || got != p {
			t.Fatalf("PhaseByName(%q) = %v, %v", name, got, ok)
		}
	}
}
