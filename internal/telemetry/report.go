// Cross-rank aggregation and Chrome trace export. BuildReport consumes
// the per-rank snapshots collected by a Gather over the in-process MPI
// runtime — the way the paper aggregates Jaguar timings at rank 0 — and
// reduces them to per-phase distribution statistics over (rank, step)
// sample windows plus a merged, time-ordered event trace.

package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
)

// PhaseStats aggregates one phase across all ranks and step windows.
// Mean/Min/Max/P99 are over the per-(rank, step) samples, in seconds per
// step; TotalSec sums every rank's accumulator; MaxRankSec is the slowest
// single rank's total — the pacing term of the paper's Eq. 7, where the
// step time is set by the worst rank.
type PhaseStats struct {
	Phase      string  `json:"phase"`
	Spans      int64   `json:"spans"`
	TotalSec   float64 `json:"total_sec"`
	MaxRankSec float64 `json:"max_rank_sec"`
	MeanSec    float64 `json:"mean_sec_per_step"`
	MinSec     float64 `json:"min_sec_per_step"`
	MaxSec     float64 `json:"max_sec_per_step"`
	P99Sec     float64 `json:"p99_sec_per_step"`
}

// NeighborStats is one (rank, peer) edge of the message graph.
type NeighborStats struct {
	Rank           int     `json:"rank"`
	Peer           int     `json:"peer"`
	SentMsgs       int64   `json:"sent_msgs"`
	SentFloats     int64   `json:"sent_floats"`
	RecvMsgs       int64   `json:"recv_msgs"`
	RecvFloats     int64   `json:"recv_floats"`
	MeanLatencySec float64 `json:"mean_latency_sec"`
	MaxLatencySec  float64 `json:"max_latency_sec"`
}

// Report is the aggregated telemetry of one run.
type Report struct {
	Ranks         int             `json:"ranks"`
	StepWindows   int             `json:"step_windows"`
	Phases        []PhaseStats    `json:"phases"` // indexed by Phase
	Neighbors     []NeighborStats `json:"neighbors,omitempty"`
	Events        []Event         `json:"-"` // merged trace, time-ordered
	DroppedEvents uint64          `json:"dropped_events,omitempty"`
}

// BuildReport decodes the gathered per-rank payloads and aggregates them.
func BuildReport(payloads [][]float32) (*Report, error) {
	snaps := make([]*Snapshot, 0, len(payloads))
	for _, p := range payloads {
		if len(p) == 0 {
			continue
		}
		s, err := DecodeSnapshot(p)
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, s)
	}
	return buildFromSnapshots(snaps), nil
}

func buildFromSnapshots(snaps []*Snapshot) *Report {
	rep := &Report{Ranks: len(snaps), Phases: make([]PhaseStats, NumPhases)}
	samples := make([][]float64, NumPhases)
	for _, s := range snaps {
		if len(s.Steps) > rep.StepWindows {
			rep.StepWindows = len(s.Steps)
		}
		rankTotal := make([]float64, NumPhases)
		for _, row := range s.Steps {
			for p := 0; p < NumPhases; p++ {
				sec := float64(row[p]) / 1e9
				samples[p] = append(samples[p], sec)
				rankTotal[p] += sec
			}
		}
		for p := 0; p < NumPhases; p++ {
			ps := &rep.Phases[p]
			ps.Spans += s.Counts[p]
			ps.TotalSec += rankTotal[p]
			if rankTotal[p] > ps.MaxRankSec {
				ps.MaxRankSec = rankTotal[p]
			}
		}
		for _, nb := range s.Neighbors {
			ns := NeighborStats{
				Rank: s.Rank, Peer: nb.Peer,
				SentMsgs: nb.SentMsgs, SentFloats: nb.SentFloats,
				RecvMsgs: nb.RecvMsgs, RecvFloats: nb.RecvFloats,
				MaxLatencySec: float64(nb.LatencyMaxNs) / 1e9,
			}
			if nb.LatencyN > 0 {
				ns.MeanLatencySec = float64(nb.LatencySumNs) / float64(nb.LatencyN) / 1e9
			}
			rep.Neighbors = append(rep.Neighbors, ns)
		}
		rep.Events = append(rep.Events, s.Events...)
		rep.DroppedEvents += s.Dropped
	}
	for p := 0; p < NumPhases; p++ {
		ps := &rep.Phases[p]
		ps.Phase = Phase(p).String()
		sv := samples[p]
		if len(sv) == 0 {
			continue
		}
		sort.Float64s(sv)
		ps.MinSec = sv[0]
		ps.MaxSec = sv[len(sv)-1]
		ps.P99Sec = quantile(sv, 0.99)
		sum := 0.0
		for _, v := range sv {
			sum += v
		}
		ps.MeanSec = sum / float64(len(sv))
	}
	sort.Slice(rep.Neighbors, func(i, j int) bool {
		a, b := rep.Neighbors[i], rep.Neighbors[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Peer < b.Peer
	})
	sort.Slice(rep.Events, func(i, j int) bool {
		return rep.Events[i].Start < rep.Events[j].Start
	})
	return rep
}

// quantile returns the q-th quantile of an ascending-sorted sample using
// the nearest-rank method (ceil(q*n)).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Stat returns the aggregated stats of phase p.
func (r *Report) Stat(p Phase) PhaseStats {
	if r == nil || int(p) >= len(r.Phases) {
		return PhaseStats{Phase: p.String()}
	}
	return r.Phases[p]
}

// MeanStepSec sums the per-step means of the given phases — the measured
// per-rank cost of that phase group per solver step.
func (r *Report) MeanStepSec(phases ...Phase) float64 {
	sum := 0.0
	for _, p := range phases {
		sum += r.Stat(p).MeanSec
	}
	return sum
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (ph "X" = complete event, ph "M" = metadata; ts/dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the merged event trace in Chrome trace-event
// JSON (load in chrome://tracing or Perfetto). Each rank is one process;
// each phase gets its own thread track so concurrent tile spans from the
// worker pool stay readable.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, 2*NumPhases+len(r.Events))
	seen := map[int]bool{}
	for _, e := range r.Events {
		if !seen[e.Rank] {
			seen[e.Rank] = true
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: e.Rank,
				Args: map[string]any{"name": "rank " + strconv.Itoa(e.Rank)},
			})
			for p := 0; p < NumPhases; p++ {
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: e.Rank, Tid: p,
					Args: map[string]any{"name": Phase(p).String()},
				})
			}
		}
		events = append(events, chromeEvent{
			Name: e.Phase.String(), Cat: "phase", Ph: "X",
			Ts:  float64(e.Start) / 1e3,
			Dur: float64(e.Dur) / 1e3,
			Pid: e.Rank, Tid: int(e.Phase),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}
