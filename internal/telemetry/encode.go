// Snapshot encoding: the in-process MPI runtime moves []float32, so a
// recorder serializes to float32 pairs for the rank-0 gather. Each wide
// value (int64 nanoseconds, counts) is stored as a hi/lo float32 pair —
// hi = float32(v), lo = float32(v - hi) — recovering ~48 bits, the same
// technique the runtime's collectives use for float64 payloads. At the
// scales involved (ns within one run, message counts) the round trip is
// exact for all practical purposes.

package telemetry

import "fmt"

func appendWide(dst []float32, v float64) []float32 {
	hi := float32(v)
	lo := float32(v - float64(hi))
	return append(dst, hi, lo)
}

type wideReader struct {
	buf []float32
	pos int
	err error
}

func (r *wideReader) next() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+2 > len(r.buf) {
		r.err = fmt.Errorf("telemetry: snapshot truncated at %d/%d", r.pos, len(r.buf))
		return 0
	}
	v := float64(r.buf[r.pos]) + float64(r.buf[r.pos+1])
	r.pos += 2
	return v
}

func (r *wideReader) nextInt() int64 { return int64(r.next()) }

// Snapshot is one rank's decoded telemetry, the unit of cross-rank
// aggregation.
type Snapshot struct {
	Rank int
	// Steps holds per-step phase nanoseconds, one row per step window.
	Steps [][NumPhases]int64
	// Counts holds the per-phase span counts over the whole run.
	Counts [NumPhases]int64
	// Neighbors holds the per-peer message counters.
	Neighbors []Neighbor
	// Events is the (possibly truncated) event trace; Dropped counts ring
	// overwrites.
	Events  []Event
	Dropped uint64
}

// EncodeSnapshot serializes the recorder — rank, step samples, span
// counts, neighbor counters, and the event trace — as a []float32 payload
// for Comm.Gather to rank 0.
func (r *Recorder) EncodeSnapshot() []float32 {
	if r == nil {
		return nil
	}
	events, dropped := r.Events()
	nbrs := r.Neighbors()

	out := make([]float32, 0, 2*(5+NumPhases*(len(r.steps)+1)+8*len(nbrs)+3*len(events)))
	out = appendWide(out, float64(r.rank))
	out = appendWide(out, float64(len(r.steps)))
	out = appendWide(out, float64(len(nbrs)))
	out = appendWide(out, float64(len(events)))
	out = appendWide(out, float64(dropped))
	for _, row := range r.steps {
		for p := 0; p < NumPhases; p++ {
			out = appendWide(out, float64(row[p]))
		}
	}
	for p := 0; p < NumPhases; p++ {
		out = appendWide(out, float64(r.acc[p].n.Load()))
	}
	for _, nb := range nbrs {
		out = appendWide(out, float64(nb.Peer))
		out = appendWide(out, float64(nb.SentMsgs))
		out = appendWide(out, float64(nb.SentFloats))
		out = appendWide(out, float64(nb.RecvMsgs))
		out = appendWide(out, float64(nb.RecvFloats))
		out = appendWide(out, float64(nb.LatencySumNs))
		out = appendWide(out, float64(nb.LatencyMaxNs))
		out = appendWide(out, float64(nb.LatencyN))
	}
	for _, e := range events {
		out = appendWide(out, float64(e.Phase))
		out = appendWide(out, float64(e.Start))
		out = appendWide(out, float64(e.Dur))
	}
	return out
}

// DecodeSnapshot parses one rank's payload back into a Snapshot.
func DecodeSnapshot(payload []float32) (*Snapshot, error) {
	rd := &wideReader{buf: payload}
	s := &Snapshot{}
	s.Rank = int(rd.nextInt())
	nSteps := int(rd.nextInt())
	nNbrs := int(rd.nextInt())
	nEvents := int(rd.nextInt())
	s.Dropped = uint64(rd.nextInt())
	if rd.err != nil {
		return nil, rd.err
	}
	if nSteps < 0 || nNbrs < 0 || nEvents < 0 ||
		2*(nSteps*NumPhases+8*nNbrs+3*nEvents) > len(payload) {
		return nil, fmt.Errorf("telemetry: corrupt snapshot header (%d steps, %d neighbors, %d events in %d floats)",
			nSteps, nNbrs, nEvents, len(payload))
	}
	s.Steps = make([][NumPhases]int64, nSteps)
	for i := range s.Steps {
		for p := 0; p < NumPhases; p++ {
			s.Steps[i][p] = rd.nextInt()
		}
	}
	for p := 0; p < NumPhases; p++ {
		s.Counts[p] = rd.nextInt()
	}
	s.Neighbors = make([]Neighbor, nNbrs)
	for i := range s.Neighbors {
		nb := &s.Neighbors[i]
		nb.Peer = int(rd.nextInt())
		nb.SentMsgs = rd.nextInt()
		nb.SentFloats = rd.nextInt()
		nb.RecvMsgs = rd.nextInt()
		nb.RecvFloats = rd.nextInt()
		nb.LatencySumNs = rd.nextInt()
		nb.LatencyMaxNs = rd.nextInt()
		nb.LatencyN = rd.nextInt()
	}
	s.Events = make([]Event, nEvents)
	for i := range s.Events {
		ph := rd.nextInt()
		if ph < 0 || ph >= int64(NumPhases) {
			return nil, fmt.Errorf("telemetry: corrupt event phase %d", ph)
		}
		s.Events[i] = Event{
			Rank:  s.Rank,
			Phase: Phase(ph),
			Start: rd.nextInt(),
			Dur:   rd.nextInt(),
		}
	}
	if rd.err != nil {
		return nil, rd.err
	}
	return s, nil
}
