//go:build race

package telemetry

// RaceEnabled reports whether the binary was built with the race detector.
// Timing-sensitive guards (the telemetry overhead budget) skip themselves
// under its instrumentation, which inflates every atomic and lock by an
// order of magnitude.
const RaceEnabled = true
