// Package repro's benchmark suite: one testing.B benchmark per table and
// figure of the paper's evaluation, plus real-hardware ablations of the
// §IV optimizations (kernel variants, communication models, overlap, I/O
// aggregation). Petascale-scale quantities are evaluated through the
// validated performance model; laptop-scale benches run the real solver.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
	"repro/internal/output"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
)

// --- Table 1 / Table 2 / Fig 12 / Fig 13 / Fig 14: performance model ---

func BenchmarkTable1MachineModel(b *testing.B) {
	v, _ := perfmodel.VersionByName("7.2")
	g := grid.Dims{NX: 3000, NY: 1500, NZ: 800}
	for _, m := range perfmodel.Machines {
		b.Run(m.Name, func(b *testing.B) {
			j := perfmodel.Job{Machine: m, Version: v, Global: g, Cores: m.CoresUsed}
			var t float64
			for i := 0; i < b.N; i++ {
				t = perfmodel.SustainedTflops(j)
			}
			b.ReportMetric(t, "Tflops")
		})
	}
}

func BenchmarkTable2Evolution(b *testing.B) {
	for _, v := range perfmodel.Versions {
		b.Run("v"+v.Name, func(b *testing.B) {
			j := perfmodel.M8Job(v)
			var st float64
			for i := 0; i < b.N; i++ {
				st = perfmodel.StepTime(j).Total()
			}
			b.ReportMetric(st, "s/step")
			b.ReportMetric(perfmodel.SustainedTflops(j), "Tflops")
		})
	}
}

func BenchmarkFig12Breakdown(b *testing.B) {
	for _, cores := range []int{65610, 223074} {
		for _, name := range []string{"6.0", "7.2"} {
			v, _ := perfmodel.VersionByName(name)
			b.Run(fmt.Sprintf("cores=%d/v%s", cores, name), func(b *testing.B) {
				j := perfmodel.M8Job(v)
				j.Cores = cores
				var bd perfmodel.Breakdown
				for i := 0; i < b.N; i++ {
					bd = perfmodel.StepTime(j)
				}
				b.ReportMetric(bd.Comp, "Tcomp")
				b.ReportMetric(bd.Comm, "Tcomm")
				b.ReportMetric(bd.Sync, "Tsync")
				b.ReportMetric(bd.IO, "T_IO")
			})
		}
	}
}

func BenchmarkFig13TimeToSolution(b *testing.B) {
	for _, v := range perfmodel.Versions {
		b.Run("v"+v.Name, func(b *testing.B) {
			j := perfmodel.M8Job(v)
			var tts float64
			for i := 0; i < b.N; i++ {
				tts = perfmodel.TimeToSolution(j, 1000)
			}
			b.ReportMetric(tts, "s/1000steps")
		})
	}
}

func BenchmarkFig14StrongScaling(b *testing.B) {
	v72, _ := perfmodel.VersionByName("7.2")
	m8 := grid.Dims{NX: 20250, NY: 10125, NZ: 2125}
	cores := []int{16384, 65610, 223074}
	for _, p := range cores {
		b.Run(fmt.Sprintf("jaguar-%d", p), func(b *testing.B) {
			var pt []perfmodel.ScalingPoint
			for i := 0; i < b.N; i++ {
				pt = perfmodel.StrongScaling(perfmodel.Jaguar, v72, m8, []int{p})
			}
			b.ReportMetric(pt[0].Efficiency, "efficiency")
			b.ReportMetric(pt[0].Tflops, "Tflops")
		})
	}
}

// --- §IV.B ablation: real kernel variants on this machine ---

func benchMedium(b *testing.B, d grid.Dims) *medium.Medium {
	b.Helper()
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	return medium.FromCVM(cvm.HardRock(), dc, dc.SubFor(0), 200)
}

func BenchmarkAblationKernels(b *testing.B) {
	d := grid.Dims{NX: 64, NY: 64, NZ: 64}
	m := benchMedium(b, d)
	dt := m.StableDt(0.5)
	box := fd.FullBox(d)
	for _, v := range []fd.Variant{fd.Naive, fd.Recip, fd.Precomp, fd.Blocked, fd.Unrolled} {
		b.Run(v.String(), func(b *testing.B) {
			s := fd.NewState(d)
			s.VX.Set(32, 32, 32, 1)
			b.SetBytes(int64(d.Cells()) * 4 * 9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd.UpdateVelocity(s, m, dt, box, v, fd.DefaultBlocking)
				fd.UpdateStress(s, m, dt, box, v, fd.DefaultBlocking)
			}
			cellsteps := float64(d.Cells()) * float64(b.N)
			b.ReportMetric(cellsteps/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}

// --- §IV.A / §IV.C ablation: communication models on the real solver ---

func BenchmarkAblationCommModels(b *testing.B) {
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	for _, cm := range []solver.CommModel{solver.Synchronous, solver.Asynchronous,
		solver.AsyncReduced, solver.AsyncOverlap} {
		b.Run(cm.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := solver.Run(q, solver.Options{
					Global: grid.Dims{NX: 48, NY: 24, NZ: 24},
					H:      100, Steps: 20,
					Topo: mpi.NewCart(2, 2, 1),
					Comm: cm,
					Sources: []source.SampledSource{(source.PointSource{
						GI: 24, GJ: 12, GK: 12, M0: 1e15,
						Tensor: source.Explosion, STF: source.GaussianPulse(0.05, 0.01),
					}).Sample(0.002, 100)},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 11: message-passing round-trip latency of the runtime ---

func BenchmarkFig11AsyncLatency(b *testing.B) {
	w := mpi.NewWorld(2)
	b.ResetTimer()
	w.Run(func(c *mpi.Comm) {
		buf := make([]float32, 1024)
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(1, i, buf)
				c.Recv(buf, 1, 1<<30+i)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(buf, 0, i)
				c.Send(0, 1<<30+i, buf)
			}
		}
	})
}

// --- §III.E: I/O aggregation on the simulated parallel file system ---

func BenchmarkIOAggregation(b *testing.B) {
	for _, flushEvery := range []int{1, 100, 500} {
		b.Run(fmt.Sprintf("flushEvery=%d", flushEvery), func(b *testing.B) {
			// Modest FS so the latency-vs-bandwidth contrast is visible at
			// bench scale (the unit test asserts the 49%->2% collapse).
			fsys := pfs.New(pfs.Config{OSTs: 8, OSTBandwidth: 1e8, MDSLatency: 1e-3, MDSConcurrent: 4})
			var frac float64
			for i := 0; i < b.N; i++ {
				frac = output.OverheadModel(fsys, "out/v.bin", 2000, 1e-3, 1<<10, flushEvery)
			}
			b.ReportMetric(frac*100, "io-overhead-%")
		})
	}
}

// --- Halo exchange volume: the §IV.A reduced-communication claim ---

func BenchmarkMessageVolume(b *testing.B) {
	d := grid.Dims{NX: 125, NY: 125, NZ: 125}
	all := [3][2]bool{{true, true}, {true, true}, {true, true}}
	for _, cm := range []solver.CommModel{solver.Asynchronous, solver.AsyncReduced} {
		b.Run(cm.String(), func(b *testing.B) {
			var vol int
			for i := 0; i < b.N; i++ {
				vol = solver.MessageVolume(d, all, cm)
			}
			b.ReportMetric(float64(vol*4)/1e6, "MB/step")
		})
	}
}

// --- Full solver throughput (the real code on this machine) ---

func BenchmarkSolverStep(b *testing.B) {
	q := cvm.SoCal(12800, 12800, 6400, 500)
	g := grid.Dims{NX: 64, NY: 64, NZ: 32}
	b.Run("awm-full-physics", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := solver.Run(q, solver.Options{
				Global: g, H: 200, Steps: 10,
				Comm: solver.AsyncReduced, ABC: solver.MPMLABC, PMLWidth: 8,
				FreeSurface: true, Attenuation: true,
				Sources: []source.SampledSource{(source.PointSource{
					GI: 32, GJ: 32, GK: 16, M0: 1e15,
					Tensor: source.StrikeSlipXY, STF: source.GaussianPulse(0.1, 0.03),
				}).Sample(0.002, 200)},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(g.Cells()*10*b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	})
}

// --- Execution engine ablations: pool vs spawn, threaded overlap, ---
// --- zero-copy messaging (the persistent-engine PR's three layers) ---

// BenchmarkEnginePoolVsSpawn isolates scheduling overhead at equal thread
// counts: the legacy spawn-per-call k-slab path against the persistent
// pool draining the same work as j/k tiles.
func BenchmarkEnginePoolVsSpawn(b *testing.B) {
	d := grid.Dims{NX: 64, NY: 64, NZ: 64}
	m := benchMedium(b, d)
	dt := m.StableDt(0.5)
	box := fd.FullBox(d)
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("spawn/threads=%d", threads), func(b *testing.B) {
			s := fd.NewState(d)
			s.VX.Set(32, 32, 32, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd.UpdateVelocityParallel(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, threads)
				fd.UpdateStressParallel(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, threads)
			}
			b.ReportMetric(float64(d.Cells())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
		b.Run(fmt.Sprintf("pool/threads=%d", threads), func(b *testing.B) {
			p := sched.NewPool(threads)
			defer p.Close()
			s := fd.NewState(d)
			s.VX.Set(32, 32, 32, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd.UpdateVelocityTiled(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, p)
				fd.UpdateStressTiled(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, p)
			}
			b.ReportMetric(float64(d.Cells())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}

// BenchmarkEngineOverlapThreads runs the full solver in the overlap model,
// serial vs pooled: with spare cores the interior update hides behind the
// exchange (§IV.C+D). On a single-core host the threaded rows only measure
// scheduling overhead — record GOMAXPROCS alongside the numbers.
func BenchmarkEngineOverlapThreads(b *testing.B) {
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	g := grid.Dims{NX: 128, NY: 128, NZ: 128}
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("overlap/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := solver.Run(q, solver.Options{
					Global: g, H: 100, Steps: 2,
					Topo: mpi.NewCart(2, 1, 1),
					Comm: solver.AsyncOverlap, Threads: threads,
					Sources: []source.SampledSource{(source.PointSource{
						GI: 64, GJ: 64, GK: 64, M0: 1e15,
						Tensor: source.Explosion, STF: source.GaussianPulse(0.05, 0.01),
					}).Sample(0.002, 100)},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.Cells()*2*b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}

// BenchmarkEngineHaloSendMode contrasts the copying send path with the
// buffer-lending zero-copy path at halo-face message sizes. Run with
// -benchmem: the zero-copy rows must show 0 allocs/op in steady state.
func BenchmarkEngineHaloSendMode(b *testing.B) {
	const n = 2 * 64 * 64 // one ghost face of a 64^3 subgrid
	b.Run("copy", func(b *testing.B) {
		w := mpi.NewWorld(2)
		b.ResetTimer()
		w.Run(func(c *mpi.Comm) {
			buf := make([]float32, n)
			if c.Rank() == 0 {
				for i := 0; i < b.N; i++ {
					c.Send(1, 1, buf)
				}
			} else {
				for i := 0; i < b.N; i++ {
					c.Recv(buf, 0, 1)
				}
			}
		})
	})
	b.Run("zero-copy", func(b *testing.B) {
		w := mpi.NewWorld(2)
		b.ResetTimer()
		w.Run(func(c *mpi.Comm) {
			if c.Rank() == 0 {
				src := make([]float32, n)
				for i := 0; i < b.N; i++ {
					out := mpi.GetBuffer(n)
					copy(out, src) // the one pack
					c.SendOwned(1, 1, out)
				}
			} else {
				for i := 0; i < b.N; i++ {
					in, _ := c.MustRecvTake(0, 1)
					mpi.PutBuffer(in)
				}
			}
		})
	})
}
