#!/usr/bin/env bash
# Bounds-check-elimination guard for the fused-sweep kernels.
#
# The fused inner loops are written against explicit per-offset subslice
# windows (ap := a[n0+off:][:ni]) precisely so the compiler's prove pass can
# eliminate every per-point bounds check; a regression here silently costs
# kernel throughput. This script rebuilds the kernel packages with
# -d=ssa/check_bce and fails if any per-point IsInBounds check appears in a
# fused kernel file. IsSliceInBounds diagnostics are allowed: they are the
# once-per-row window creations, not per-point checks.
#
# A fresh GOCACHE is mandatory: the build cache suppresses compiler
# diagnostics for already-compiled packages, which would make the guard
# vacuously pass.
set -euo pipefail
cd "$(dirname "$0")/.."

# Files whose inner loops must stay free of per-point bounds checks.
GUARDED='internal/core/fd/fused.go internal/core/attenuation/fused.go internal/core/fd/ttile.go internal/core/fd/lerp.go'

tmpcache=$(mktemp -d)
trap 'rm -rf "$tmpcache"' EXIT

diag=$(GOCACHE="$tmpcache" go build \
    -gcflags="repro/internal/core/fd=-d=ssa/check_bce" \
    -gcflags="repro/internal/core/attenuation=-d=ssa/check_bce" \
    ./internal/core/fd ./internal/core/attenuation 2>&1 || true)

status=0
for f in $GUARDED; do
    base=$(basename "$f")
    hits=$(printf '%s\n' "$diag" | grep "Found IsInBounds" | grep -c "$base" || true)
    if [ "$hits" -ne 0 ]; then
        echo "FAIL: $hits per-point bounds check(s) in $f:"
        printf '%s\n' "$diag" | grep "Found IsInBounds" | grep "$base"
        status=1
    else
        echo "ok: $f has no per-point bounds checks"
    fi
done

# Sanity: the diagnostics must actually be present (an empty diag means the
# flags were dropped or the cache swallowed the output).
if ! printf '%s\n' "$diag" | grep -q "Found Is"; then
    echo "FAIL: no check_bce diagnostics produced — guard is not measuring anything"
    status=1
fi

exit $status
