// M8: the scaled wall-to-wall scenario — the paper's two-step method end
// to end. Step 1 runs the SGSN spontaneous dynamic rupture (DFR) with the
// M8 initial-stress recipe (depth-dependent strength, Von Kármán random
// shear stress, velocity strengthening, Dc taper). Step 2 transfers the
// slip-rate histories onto the wave-propagation model (AWM) through
// temporal interpolation and a 2 Hz low-pass filter, then propagates
// through the basin-bearing synthetic southern-California model and
// reports PGVH at the population-center analogues and a GMPE comparison.
package main

import (
	"fmt"

	"repro/awp"
	"repro/internal/analysis"
	"repro/internal/core/rupture"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
)

func main() {
	// ---- Step 1: dynamic rupture (DFR / SGSN mode) ----
	rupDims := grid.Dims{NX: 120, NY: 32, NZ: 28}
	hr := 200.0
	spec := rupture.M8StressSpec(100, 20, hr)
	spec.Dc = 0.08
	spec.DcSurface = 0.25
	spec.DepthK = func(k int) float64 { return float64(k+2) * hr * 4 }
	tau, sn, fr := spec.Build()
	rupture.Nucleate(tau, sn, fr, 18, 10, 6, 0.02) // ~20 km from the NW end

	rockQ := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	rup, err := solver.Run(rockQ, solver.Options{
		Global: rupDims, H: hr, Steps: 700,
		Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 6,
		Fault: &solver.FaultSpec{
			J0: 16, I0: 10, I1: 110, K0: 3, K1: 23,
			Tau0: tau, SigmaN: sn, Friction: fr, RecordEvery: 2,
		},
	})
	if err != nil {
		panic(err)
	}
	st := rup.FaultStats
	var m0 float64
	for _, mr := range rup.MomentRate {
		m0 += mr * rup.Dt
	}
	fmt.Println("M8 scaled two-step simulation")
	fmt.Printf("step 1 (DFR): slip max/mean %.2f/%.2f m, peak rate %.1f m/s, "+
		"vr %.0f m/s, supershear fraction %.2f, Mw %.2f\n",
		st.MaxSlip, st.MeanSlip, st.MaxPeakRate, st.MeanRuptureVelocity,
		st.SupershearFraction, source.M02Mw(m0))

	// ---- Step 2: transfer and wave propagation (AWM mode) ----
	hw := 400.0
	wDims := grid.Dims{NX: 120, NY: 80, NZ: 24}
	var srcs []source.SampledSource
	for n, series := range rup.SlipSeries {
		node := rup.SlipNodes[n]
		srcs = append(srcs, source.TransferDynamic(
			node[0]/2+20, 40, node[2]/2, // map onto the coarser wave grid
			series, 3.24e10, hw*hw, rup.SlipDt, 0.02, 2.0, 700))
	}
	model := cvm.SoCal(float64(wDims.NX)*hw, float64(wDims.NY)*hw, float64(wDims.NZ)*hw, 500)
	res, err := solver.Run(model, solver.Options{
		Global: wDims, H: hw, Steps: 1100,
		Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 8,
		FreeSurface: true, Attenuation: true,
		Sources: srcs, TrackPGV: true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("step 2 (AWM): PGVH at population-center analogues")
	sites := []struct {
		name   string
		fx, fy float64
	}{
		{"LA basin", 0.52, 0.40},
		{"San Bernardino", 0.62, 0.52},
		{"Ventura", 0.40, 0.47},
		{"Coachella", 0.78, 0.33},
		{"rock reference", 0.15, 0.85},
	}
	for _, s := range sites {
		i := int(s.fx * float64(wDims.NX))
		j := int(s.fy * float64(wDims.NY))
		fmt.Printf("  %-16s %8.3f m/s\n", s.name, res.PGVH[j*wDims.NX+i])
	}

	// GMPE comparison for rock sites (Fig 23 analogue).
	ba := awp.BooreAtkinson2008()
	mw := source.M02Mw(m0)
	trace := [][2]float64{{20 * hw, 40 * hw}, {70 * hw, 40 * hw}}
	var sites23 []analysis.Site
	for j := 0; j < wDims.NY; j++ {
		for i := 0; i < wDims.NX; i++ {
			mat := model.Query(float64(i)*hw, float64(j)*hw, 0)
			sites23 = append(sites23, analysis.Site{
				DistKM: analysis.FaultTraceDistanceKM(float64(i)*hw, float64(j)*hw, trace),
				PGV:    analysis.GeomMeanFromPeaks(res.PGVX[j*wDims.NX+i], res.PGVY[j*wDims.NX+i]) * 100,
				Rock:   mat.Vs > 1000,
			})
		}
	}
	bins := analysis.BinByDistance(sites23, []float64{0, 5, 10, 20, 40})
	fmt.Printf("rock-site geometric-mean PGV vs B&A08 (Mw %.2f):\n", mw)
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		rmid := (b.RMin + b.RMax) / 2
		fmt.Printf("  %4.0f-%-4.0f km: M8 %8.2f cm/s   B&A08 %8.2f cm/s  (n=%d)\n",
			b.RMin, b.RMax, b.Median, ba.MedianPGV(mw, rmid, 760), b.Count)
	}
}
