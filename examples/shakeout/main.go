// ShakeOut: a scaled ShakeOut-K scenario — a kinematic Haskell rupture on
// a San Andreas analogue in the synthetic southern-California model,
// rupturing unilaterally toward the NW (the ShakeOut geometry), with
// basin-site PGVs and the §VI directivity contrast between the forward
// and backward regions.
package main

import (
	"fmt"

	"repro/awp"
	"repro/internal/analysis"
	"repro/internal/core/source"
)

func main() {
	dims := awp.Dims{NX: 128, NY: 64, NZ: 24}
	h := 400.0
	model := awp.SoCalModel(float64(dims.NX)*h, float64(dims.NY)*h, float64(dims.NZ)*h, 500)

	// Kinematic rupture (dSrcG): a 29 km fault at j=32, hypocenter at the
	// SE end, rupturing NW at a sub-shear 2600 m/s. The geometry is the
	// ShakeOut shape at reduced scale; the moment is scaled with fault
	// area (~Mw 6.6) so the stress drop stays physical.
	spec := source.HaskellSpec{
		GJ: 32, I0: 28, I1: 100, K0: 2, K1: 12,
		HypoI: 96, HypoK: 7,
		H: h, Mw: 6.6, Vr: 2600, RiseTime: 1.0,
		Mu: 3.3e10, Dt: 0.02, NT: 900, TaperCells: 3,
	}
	srcs, err := spec.Generate()
	if err != nil {
		panic(err)
	}

	// Receivers: basin-analogue sites plus a rock reference.
	recv := [][3]int{
		{int(0.52 * float64(dims.NX)), int(0.40 * float64(dims.NY)), 0}, // LA
		{int(0.62 * float64(dims.NX)), int(0.52 * float64(dims.NY)), 0}, // San Bernardino
		{int(0.40 * float64(dims.NX)), int(0.47 * float64(dims.NY)), 0}, // Ventura
		{16, 52, 0}, // rock site far from the fault
	}
	names := []string{"LA basin", "San Bernardino", "Ventura", "rock ref"}

	// 1400 steps (~18 s): the full 11 s rupture plus wave travel to the
	// forward region.
	res, err := awp.Run(model, awp.Scenario{
		Dims: dims, H: h, Steps: 1400, Ranks: 4,
		Comm: awp.AsyncReduced, ABC: awp.SpongeABC,
		FreeSurface: true, Attenuation: true,
		Sources: srcs, Receivers: recv, TrackPGV: true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("ShakeOut-K scaled scenario (NW-directed kinematic rupture, Mw 6.6 at 1/7 scale)")
	for r, seis := range res.Seismograms {
		fmt.Printf("%-16s PGVH %.3f m/s\n", names[r], analysis.PGVHFromSeries(seis))
	}

	// Directivity (§VI): the forward (NW) region beyond the fault end
	// shakes several times harder than the backward (SE) region at the
	// same distance — the TeraShake/ShakeOut signature.
	mean := func(i0, i1 int) float64 {
		var s float64
		n := 0
		for j := 12; j < dims.NY-12; j++ {
			for i := i0; i < i1; i++ {
				s += res.PGVH[j*dims.NX+i]
				n++
			}
		}
		return s / float64(n)
	}
	fwd := mean(8, 24)
	bwd := mean(104, 120)
	fmt.Printf("directivity: mean PGVH forward (NW) %.3f vs backward (SE) %.3f m/s (%.1fx)\n",
		fwd, bwd, fwd/bwd)
}
