// Scaling: sweeps the validated performance model over the paper's
// machines and problem sizes, printing the Fig 14 strong-scaling series
// and the §V.B sustained-performance headlines.
package main

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/perfmodel"
)

func main() {
	v72, _ := perfmodel.VersionByName("7.2")
	v50, _ := perfmodel.VersionByName("5.0")
	v40, _ := perfmodel.VersionByName("4.0")

	fmt.Println("Strong scaling (modeled) — M8 on Jaguar, v7.2:")
	m8 := grid.Dims{NX: 20250, NY: 10125, NZ: 2125}
	for _, p := range perfmodel.StrongScaling(perfmodel.Jaguar, v72, m8,
		[]int{16384, 32768, 65610, 131072, 223074}) {
		fmt.Printf("  %7d cores: %7.3f s/step, speedup %9.0f, eff %5.3f, %6.1f Tflop/s\n",
			p.Cores, p.StepTime, p.Speedup, p.Efficiency, p.Tflops)
	}

	fmt.Println("\nShakeOut on Ranger — synchronous (v4.0) vs asynchronous (v5.0):")
	so := grid.Dims{NX: 6000, NY: 3000, NZ: 800}
	cores := []int{4096, 16000, 32000, 60000}
	sBefore := perfmodel.StrongScaling(perfmodel.Ranger, v40, so, cores)
	sAfter := perfmodel.StrongScaling(perfmodel.Ranger, v50, so, cores)
	for i := range cores {
		fmt.Printf("  %6d cores: sync %7.3f s/step (eff %5.3f)  async %7.3f s/step (eff %5.3f)\n",
			cores[i], sBefore[i].StepTime, sBefore[i].Efficiency,
			sAfter[i].StepTime, sAfter[i].Efficiency)
	}

	fmt.Println("\nSustained performance:")
	fmt.Printf("  M8 production:         %6.1f Tflop/s (paper: 220)\n",
		perfmodel.SustainedTflops(perfmodel.M8Job(v72)))
	fmt.Printf("  Blue Waters benchmark: %6.1f Tflop/s (paper: 260)\n",
		perfmodel.SustainedTflops(perfmodel.BenchmarkJob()))
}
