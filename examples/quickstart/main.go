// Quickstart: a point explosion in a layered half-space, recorded at three
// surface receivers — the smallest end-to-end use of the public API.
package main

import (
	"fmt"

	"repro/awp"
)

func main() {
	// A layered hard-rock model (the CVM-H stand-in).
	model := awp.LayeredModel()

	dims := awp.Dims{NX: 48, NY: 48, NZ: 32}
	h := 200.0
	res, err := awp.Run(model, awp.Scenario{
		Dims:        dims,
		H:           h,
		Steps:       300,
		Comm:        awp.AsyncReduced,
		ABC:         awp.SpongeABC,
		FreeSurface: true,
		Attenuation: true,
		// Buried explosion at 4 km depth.
		Sources:   awp.ExplosionSource(24, 24, 20, 1e16, 0.4, 0.1),
		Receivers: [][3]int{{24, 24, 0}, {36, 24, 0}, {44, 44, 0}},
		TrackPGV:  true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("quickstart: %d steps at dt=%.4fs on a %v grid (h=%.0f m)\n",
		res.Steps, res.Dt, dims, h)
	for r, seis := range res.Seismograms {
		fmt.Printf("receiver %d: PGVH=%.4e m/s, geometric-mean PGV=%.4e m/s\n",
			r, awp.PGVH(seis), awp.GeomMeanPGV(seis))
	}
	var pgvMax float64
	for _, v := range res.PGVH {
		if v > pgvMax {
			pgvMax = v
		}
	}
	fmt.Printf("surface PGVH max over the whole map: %.4e m/s\n", pgvMax)
	fmt.Printf("timing: comp=%.3fs comm=%.3fs sync=%.3fs output=%.3fs\n",
		res.Timing.Comp, res.Timing.Comm, res.Timing.Sync, res.Timing.Output)
}
