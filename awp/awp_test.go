package awp

import (
	"math"
	"testing"
)

func TestQuickstartScenario(t *testing.T) {
	q := HomogeneousModel(Material{Vp: 6000, Vs: 3464, Rho: 2700})
	res, err := Run(q, Scenario{
		Dims: Dims{NX: 24, NY: 24, NZ: 16},
		H:    100, Steps: 60,
		Comm:        AsyncReduced,
		ABC:         SpongeABC,
		FreeSurface: true,
		Attenuation: true,
		Sources:     ExplosionSource(12, 12, 8, 1e15, 0.06, 0.015),
		Receivers:   [][3]int{{6, 12, 4}},
		TrackPGV:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seismograms) != 1 || len(res.Seismograms[0]) != 60 {
		t.Fatal("seismogram missing")
	}
	if PGVH(res.Seismograms[0]) <= 0 {
		t.Fatal("no motion recorded")
	}
	if GeomMeanPGV(res.Seismograms[0]) > PGVH(res.Seismograms[0]) {
		t.Fatal("geometric mean exceeds RSS peak")
	}
}

func TestMultiRankScenarioMatchesSingle(t *testing.T) {
	q := SoCalModel(2400, 2400, 1600, 500)
	mk := func(ranks int) Scenario {
		return Scenario{
			Dims: Dims{NX: 24, NY: 24, NZ: 16},
			H:    100, Steps: 40,
			Comm:      AsyncReduced,
			ABC:       SpongeABC,
			Sources:   PointMomentSource(12, 12, 8, 1e15, 0.06, 0.015),
			Receivers: [][3]int{{6, 12, 8}},
			Ranks:     ranks,
		}
	}
	a, err := Run(q, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(q, mk(4))
	if err != nil {
		t.Fatal(err)
	}
	for n := range a.Seismograms[0] {
		for c := 0; c < 3; c++ {
			if a.Seismograms[0][n][c] != b.Seismograms[0][n][c] {
				t.Fatalf("rank-count changed the physics at sample %d", n)
			}
		}
	}
}

func TestM8FaultSpecRuns(t *testing.T) {
	q := HomogeneousModel(Material{Vp: 6000, Vs: 3464, Rho: 2700})
	fault := M8FaultSpec(12, 4, 44, 3, 21, 100, 24, 12, 5, 42)
	// Strengthen nucleation for the small test fault: reuse spec fields.
	res, err := Run(q, Scenario{
		Dims: Dims{NX: 48, NY: 24, NZ: 24},
		H:    100, Steps: 100,
		Comm:  AsyncReduced,
		ABC:   SpongeABC,
		Fault: fault,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.MaxSlip <= 0 {
		t.Fatal("nucleated fault did not slip")
	}
	if len(res.MomentRate) != 100 {
		t.Fatal("moment rate series missing")
	}
}

func TestGMPEAccessors(t *testing.T) {
	ba, cb := BooreAtkinson2008(), CampbellBozorgnia2008()
	if ba.MedianPGV(8, 10, 760) <= 0 || cb.MedianPGV(8, 10, 760) <= 0 {
		t.Fatal("GMPE medians non-positive")
	}
	if ba.Name() == cb.Name() {
		t.Fatal("GMPEs aliased")
	}
}

func TestTopoSearchRespectsConstraints(t *testing.T) {
	topo := faultTopo(Dims{NX: 64, NY: 32, NZ: 32}, 8)
	if topo.PY != 1 {
		t.Fatalf("fault topo PY=%d, want 1", topo.PY)
	}
	if topo.Size() != 8 {
		t.Fatalf("topo size %d", topo.Size())
	}
	free := bestTopo(Dims{NX: 64, NY: 64, NZ: 64}, 8)
	if free.Size() != 8 {
		t.Fatalf("free topo size %d", free.Size())
	}
}

func TestPointSourceSampling(t *testing.T) {
	srcs := PointMomentSource(1, 2, 3, 2e18, 0.5, 0.1)
	if len(srcs) != 1 {
		t.Fatal("want one source")
	}
	m := srcs[0].Moment()
	if math.Abs(m-2e18)/2e18 > 0.01 {
		t.Fatalf("sampled moment %g, want 2e18", m)
	}
}

// Scenario.Variant must select kernels by name ("fused" bit-identical to
// the default), reject unknown names, and "auto" must run the tuner end to
// end — caching its winner so a second run skips the micro-benchmark.
func TestScenarioVariantSelection(t *testing.T) {
	q := SoCalModel(2400, 2400, 1600, 500)
	mk := func() Scenario {
		return Scenario{
			Dims: Dims{NX: 24, NY: 24, NZ: 16},
			H:    100, Steps: 40,
			Comm:        AsyncReduced,
			ABC:         SpongeABC,
			FreeSurface: true,
			Attenuation: true,
			Sources:     PointMomentSource(12, 12, 8, 1e15, 0.06, 0.015),
			Receivers:   [][3]int{{6, 12, 8}},
		}
	}
	ref, err := Run(q, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"precomp", "fused"} {
		sc := mk()
		sc.Variant = name
		res, err := Run(q, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for n := range ref.Seismograms[0] {
			if ref.Seismograms[0][n] != res.Seismograms[0][n] {
				t.Fatalf("%s: sample %d differs from default variant", name, n)
			}
		}
	}

	bad := mk()
	bad.Variant = "vectorized"
	if _, err := Run(q, bad); err == nil {
		t.Fatal("unknown variant name accepted")
	}

	auto := mk()
	auto.Variant = "auto"
	auto.TunerCachePath = t.TempDir() + "/profile.json"
	if _, err := Run(q, auto); err != nil {
		t.Fatalf("auto: %v", err)
	}
	// Second run must reuse the cached profile (observable only as success
	// here; the tuner package tests assert the skip directly).
	if _, err := Run(q, auto); err != nil {
		t.Fatalf("auto (cached): %v", err)
	}
}

// Explicit JBlock/KBlock must flow through to the solver without changing
// results (blocking is a scheduling choice, never arithmetic).
func TestScenarioBlockingOverride(t *testing.T) {
	q := HomogeneousModel(Material{Vp: 6000, Vs: 3464, Rho: 2700})
	mk := func() Scenario {
		return Scenario{
			Dims: Dims{NX: 24, NY: 24, NZ: 16},
			H:    100, Steps: 30,
			Comm:      AsyncReduced,
			ABC:       SpongeABC,
			Sources:   ExplosionSource(12, 12, 8, 1e15, 0.06, 0.015),
			Receivers: [][3]int{{6, 12, 4}},
			Variant:   "fused",
		}
	}
	ref, err := Run(q, mk())
	if err != nil {
		t.Fatal(err)
	}
	sc := mk()
	sc.JBlock, sc.KBlock = 5, 3
	res, err := Run(q, sc)
	if err != nil {
		t.Fatal(err)
	}
	for n := range ref.Seismograms[0] {
		if ref.Seismograms[0][n] != res.Seismograms[0][n] {
			t.Fatalf("blocking override changed the physics at sample %d", n)
		}
	}
}

// TestNegativeDtRejected pins the Scenario-layer validation (the solver
// layer has its own identical check).
func TestNegativeDtRejected(t *testing.T) {
	q := HomogeneousModel(Material{Vp: 6000, Vs: 3464, Rho: 2700})
	_, err := Run(q, Scenario{
		Dims: Dims{NX: 16, NY: 16, NZ: 12},
		H:    100, Dt: -0.001, Steps: 4,
		ABC: SpongeABC,
	})
	if err == nil {
		t.Fatal("negative Dt accepted")
	}
}

// TestScenarioCFL checks the CFL pass-through: an out-of-range value is
// rejected by the solver, and an explicit 0.5 matches the default run.
func TestScenarioCFL(t *testing.T) {
	q := HomogeneousModel(Material{Vp: 6000, Vs: 3464, Rho: 2700})
	sc := Scenario{
		Dims: Dims{NX: 16, NY: 16, NZ: 12},
		H:    100, Steps: 8,
		ABC:       SpongeABC,
		Sources:   ExplosionSource(8, 8, 6, 1e15, 0.06, 0.015),
		Receivers: [][3]int{{4, 8, 4}},
	}
	bad := sc
	bad.CFL = 2
	if _, err := Run(q, bad); err == nil {
		t.Fatal("CFL 2 accepted")
	}
	ref, err := Run(q, sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.CFL = 0.5
	res, err := Run(q, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ref.Seismograms[0] {
		if v != res.Seismograms[0][i] {
			t.Fatalf("CFL 0.5 diverges from default at sample %d", i)
		}
	}
}

// TestScenarioLTS runs a basin-over-rock contrast through the public API
// with LTS on and off; a uniform medium under LTS must stay bit-identical.
func TestScenarioLTS(t *testing.T) {
	mk := func(lts bool) Scenario {
		return Scenario{
			Dims: Dims{NX: 32, NY: 12, NZ: 12},
			H:    100, Steps: 32,
			Ranks:       2,
			ABC:         SpongeABC,
			FreeSurface: true,
			LTS:         lts,
			Sources:     ExplosionSource(8, 6, 6, 1e15, 0.06, 0.015),
			Receivers:   [][3]int{{8, 6, 3}, {24, 6, 3}},
			TrackPGV:    true,
		}
	}
	uni := HomogeneousModel(Material{Vp: 6000, Vs: 3464, Rho: 2700})
	ref, err := Run(uni, mk(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(uni, mk(true))
	if err != nil {
		t.Fatal(err)
	}
	for r := range ref.Seismograms {
		for i, v := range ref.Seismograms[r] {
			if v != res.Seismograms[r][i] {
				t.Fatalf("uniform-medium LTS diverges at receiver %d sample %d", r, i)
			}
		}
	}

	// Mixed medium: must run and produce finite motion at both receivers.
	mixed := &laterallySplitModel{
		split: 16 * 100,
		rock:  Material{Vp: 5200, Vs: 3000, Rho: 2700},
		soft:  Material{Vp: 1200, Vs: 700, Rho: 1900},
	}
	mres, err := Run(mixed, mk(true))
	if err != nil {
		t.Fatal(err)
	}
	for r := range mres.Seismograms {
		for i, v := range mres.Seismograms[r] {
			for c := 0; c < 3; c++ {
				if math.IsNaN(float64(v[c])) {
					t.Fatalf("NaN at receiver %d sample %d", r, i)
				}
			}
		}
	}
}

// laterallySplitModel is rock for x < split, soft beyond.
type laterallySplitModel struct {
	split      float64
	rock, soft Material
}

func (m *laterallySplitModel) Query(x, _, _ float64) Material {
	if x < m.split {
		return m.rock
	}
	return m.soft
}
