// Package awp is the public API of this AWP-ODC reproduction: anelastic
// wave propagation (AWM) and staggered-grid split-node dynamic rupture
// (DFR) on a 3D velocity–stress staggered grid, with the petascale
// ecosystem of the SC'10 paper (mesh generation and partitioning, source
// generation, parallel output, checkpointing, performance modeling, and
// ground-motion analysis) available through the sub-packages of
// repro/internal for advanced use.
//
// Quick start:
//
//	q := awp.SoCalModel(20e3, 20e3, 10e3, 500)
//	res, err := awp.Run(q, awp.Scenario{
//	    Dims: awp.Dims{NX: 40, NY: 40, NZ: 20},
//	    H:    500, Steps: 300,
//	    Sources: awp.PointMomentSource(20, 20, 10, 1e17, 0.5, 0.1),
//	    TrackPGV: true,
//	})
package awp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core/fd"
	"repro/internal/core/rupture"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/tuner"
)

// Dims is the global grid extent in cells.
type Dims = grid.Dims

// Material is a (Vp, Vs, rho) property triple.
type Material = cvm.Material

// Model is a queryable velocity model.
type Model = cvm.Querier

// Result carries the rank-0 outputs of a run.
type Result = solver.Result

// Seismogram is one receiver's three-component velocity time series.
type Seismogram = [][3]float32

// FaultSpec configures dynamic-rupture (DFR) mode.
type FaultSpec = solver.FaultSpec

// Friction is the slip-weakening friction law parameters.
type Friction = rupture.Friction

// GMPE is a ground-motion prediction equation (Fig 23 comparisons).
type GMPE = analysis.GMPE

// TelemetryOptions enables the per-rank phase instrumentation; the
// aggregated report lands in Result.Telemetry and can be exported as a
// Chrome trace with its WriteChromeTrace method.
type TelemetryOptions = telemetry.Options

// TelemetryReport is the aggregated cross-rank phase report.
type TelemetryReport = telemetry.Report

// Comm models (§IV.A of the paper).
const (
	Synchronous  = solver.Synchronous
	Asynchronous = solver.Asynchronous
	AsyncReduced = solver.AsyncReduced
	AsyncOverlap = solver.AsyncOverlap
)

// Absorbing boundary kinds (§II.D).
const (
	NoABC     = solver.NoABC
	SpongeABC = solver.SpongeABC
	MPMLABC   = solver.MPMLABC
)

// Scenario is a simulation configuration with sane defaults: asynchronous
// reduced communication, M-PML sides/bottom, FS2 free surface on top, and
// coarse-grained constant-Q attenuation.
type Scenario struct {
	Dims  Dims
	H     float64 // grid spacing, m
	Dt    float64 // 0: automatic at the CFL safety factor; negative rejected
	Steps int

	// CFL is the safety factor for the automatic time step (and for LTS
	// rate assignment). 0 defaults to the historical 0.5; explicit values
	// must lie in (0, 1].
	CFL float64

	// LTS enables multi-rate local time stepping: ranks whose subgrid
	// medium admits a larger stable step advance with dt*2^k (k capped by
	// LTSMaxK), exchanging rate-boundary halos through time-interpolated
	// ghost sections, and the decomposition places work-weighted cuts
	// from a velocity-model scan. Runs whose assigned rates are all 1 are
	// bit-identical to LTS off; mixed-rate runs trade rate-boundary
	// accuracy for wall-clock (see DESIGN.md section 12). Mutually
	// exclusive with explicit TemporalDepth > 1, M-PML and DFR mode.
	LTS bool
	// LTSMaxK caps the rate exponent (rates up to 2^LTSMaxK); 0 defaults
	// to 2. LTSMaxRateRatio caps the rate ratio across a rank seam; 0
	// defaults to 2 (4 allows a rate-1/rate-4 seam).
	LTSMaxK, LTSMaxRateRatio int

	// Ranks is the number of MPI ranks (goroutines); 0 or 1 runs single
	// rank. The 3D topology is chosen automatically.
	Ranks int

	// Threads is each rank's persistent worker-pool size (the hybrid
	// MPI/OpenMP mode, §IV.D); 0 or 1 runs each rank serially, negative
	// values are rejected. Results are bit-identical across Threads.
	Threads int

	// CopyHalo selects the legacy copying halo-message path instead of
	// the default zero-copy buffer lending (benchmarking aid; results
	// are bit-identical).
	CopyHalo bool

	// CoalesceHalo packs all faces bound for one neighbor in one phase
	// into a single message (one per neighbor per phase instead of one
	// per field per face); results are bit-identical.
	CoalesceHalo bool

	Comm        solver.CommModel
	ABC         solver.ABCKind
	SpongeWidth int // 0: 8 cells (laptop-scale default; production uses 20)
	FreeSurface bool
	Attenuation bool

	// Variant selects the stencil kernel: "" (the Blocked default), one of
	// the ladder names "naive", "recip", "precomp", "blocked", "unrolled",
	// "fused", or "auto" to run the per-machine kernel autotuner on the
	// rank-0 subgrid shape (winner cached in a JSON profile, so only the
	// first run on a machine pays the micro-benchmark).
	Variant string

	// JBlock/KBlock override the cache-blocking tile (0: DefaultBlocking,
	// or the autotuned blocking when Variant is "auto").
	JBlock, KBlock int

	// TemporalDepth T > 1 enables time-tiled super-steps: T leapfrog steps
	// per deep halo exchange (allowed values 1, 2, 4; 0 means 1, or the
	// autotuned depth when Variant is "auto"). Results are bit-identical
	// across depths. Forced back to 1 when a feature the tiled engine does
	// not cover is active (M-PML, overlapped comm, dynamic rupture).
	TemporalDepth int

	// TunerCachePath overrides the autotuner profile location ("" uses the
	// per-user default under os.UserCacheDir).
	TunerCachePath string

	Sources   []source.SampledSource
	Fault     *FaultSpec
	Receivers [][3]int
	TrackPGV  bool

	// Telemetry enables per-rank phase instrumentation (nil: off, zero
	// overhead beyond nil checks). Results are bit-identical either way.
	Telemetry *TelemetryOptions
}

// Run executes a wave-propagation (AWM) or dynamic-rupture (DFR) scenario.
func Run(q Model, sc Scenario) (*Result, error) {
	if sc.Dt < 0 {
		return nil, fmt.Errorf("awp: Dt must be positive, or zero for automatic; got %g", sc.Dt)
	}
	if sc.SpongeWidth <= 0 {
		sc.SpongeWidth = 8
	}
	topo := mpi.NewCart(1, 1, 1)
	if sc.Ranks > 1 {
		if sc.Fault != nil {
			// DFR mode keeps the fault plane on one rank in y.
			topo = faultTopo(sc.Dims, sc.Ranks)
		} else {
			topo = bestTopo(sc.Dims, sc.Ranks)
		}
	}
	variant, blocking, tdepth, err := resolveKernel(sc, topo)
	if err != nil {
		return nil, err
	}
	opt := solver.Options{
		Global:        sc.Dims,
		H:             sc.H,
		Dt:            sc.Dt,
		CFL:           sc.CFL,
		Steps:         sc.Steps,
		Topo:          topo,
		Comm:          sc.Comm,
		Threads:       sc.Threads,
		CopyHalo:      sc.CopyHalo,
		CoalesceHalo:  sc.CoalesceHalo,
		Variant:       variant,
		Blocking:      blocking,
		TemporalDepth: tdepth,
		ABC:           sc.ABC,
		SpongeWidth:   sc.SpongeWidth,
		FreeSurface:   sc.FreeSurface,
		Attenuation:   sc.Attenuation,
		Sources:       sc.Sources,
		Fault:         sc.Fault,
		Receivers:     sc.Receivers,
		TrackPGV:      sc.TrackPGV,
		Telemetry:     sc.Telemetry,
		LTS: solver.LTSOptions{
			Enabled:      sc.LTS,
			MaxK:         sc.LTSMaxK,
			MaxRateRatio: sc.LTSMaxRateRatio,
			WorkBalance:  true,
		},
	}
	return solver.Run(q, opt)
}

// resolveKernel maps Scenario.Variant/JBlock/KBlock/TemporalDepth onto the
// solver's kernel configuration. "auto" runs the tuner micro-benchmark on the
// rank-0 subgrid shape — representative of every rank, since the
// decomposition splits near-evenly — and any explicit JBlock/KBlock or
// TemporalDepth still wins over the tuned values.
func resolveKernel(sc Scenario, topo mpi.Cart) (fd.Variant, fd.Blocking, int, error) {
	variant, blocking, tdepth := fd.Blocked, fd.DefaultBlocking, 1
	switch sc.Variant {
	case "":
	case "auto":
		dc, err := decomp.New(sc.Dims, topo)
		if err != nil {
			return 0, fd.Blocking{}, 0, fmt.Errorf("awp: %w", err)
		}
		threads := sc.Threads
		if threads <= 0 {
			threads = 1
		}
		choice, _, err := tuner.AutotuneKernels(tuner.AutotuneOptions{
			Dims:        dc.SubFor(0).Local,
			Threads:     threads,
			Attenuation: sc.Attenuation,
			LTS:         sc.LTS,
			CachePath:   sc.TunerCachePath,
		})
		if err != nil {
			return 0, fd.Blocking{}, 0, fmt.Errorf("awp: kernel autotune: %w", err)
		}
		variant, blocking, tdepth = choice.Variant, choice.Blocking, choice.TemporalDepth
	default:
		v, err := fd.ParseVariant(sc.Variant)
		if err != nil {
			return 0, fd.Blocking{}, 0, fmt.Errorf("awp: %w", err)
		}
		variant = v
	}
	if sc.JBlock > 0 {
		blocking.JBlock = sc.JBlock
	}
	if sc.KBlock > 0 {
		blocking.KBlock = sc.KBlock
	}
	if sc.TemporalDepth > 0 {
		tdepth = sc.TemporalDepth
	}
	// LTS replaces super-stepping: a tuned depth > 1 silently falls back
	// to 1 (an explicit TemporalDepth > 1 is left to error in the solver,
	// since the user asked for two conflicting schemes).
	if sc.LTS && sc.TemporalDepth <= 0 {
		tdepth = 1
	}
	if tdepth > 1 && !temporalDepthOK(sc, topo) {
		tdepth = 1
	}
	return variant, blocking, tdepth, nil
}

// temporalDepthOK reports whether the time-tiled engine covers the scenario:
// it supports the sponge/no-ABC boundaries and the blocking comm models, but
// not M-PML, communication-computation overlap, dynamic rupture, or subgrids
// shallower than the deep halo.
func temporalDepthOK(sc Scenario, topo mpi.Cart) bool {
	if sc.ABC == MPMLABC || sc.Comm == AsyncOverlap || sc.Fault != nil {
		return false
	}
	T := sc.TemporalDepth
	if T <= 0 {
		T = fd.MaxTemporalDepth
	}
	parts := [3]int{topo.PX, topo.PY, topo.PZ}
	dims := [3]int{sc.Dims.NX, sc.Dims.NY, sc.Dims.NZ}
	for ax := 0; ax < 3; ax++ {
		if parts[ax] > 1 && dims[ax]/parts[ax] < 4*T {
			return false
		}
	}
	return true
}

// SoCalModel returns the synthetic southern-California velocity model
// (CVM4 stand-in) spanning lx x ly x lz meters with the given Vs floor.
func SoCalModel(lx, ly, lz, minVs float64) Model {
	return cvm.SoCal(lx, ly, lz, minVs)
}

// LayeredModel returns the generic hard-rock layered model (CVM-H
// stand-in).
func LayeredModel() Model { return cvm.HardRock() }

// HomogeneousModel returns a uniform medium.
func HomogeneousModel(m Material) Model { return cvm.Homogeneous(m) }

// PointMomentSource builds a single sub-fault strike-slip point source of
// moment m0 (N*m) at global node (i, j, k) with a Gaussian moment-rate
// pulse centred at t0 with width sigma, sampled finely enough for any
// stable dt.
func PointMomentSource(i, j, k int, m0, t0, sigma float64) []source.SampledSource {
	dt := sigma / 20
	nt := int((t0+6*sigma)/dt) + 1
	ps := source.PointSource{
		GI: i, GJ: j, GK: k, M0: m0,
		Tensor: source.StrikeSlipXY,
		STF:    source.GaussianPulse(t0, sigma),
	}
	return []source.SampledSource{ps.Sample(dt, nt)}
}

// ExplosionSource is PointMomentSource with an isotropic tensor.
func ExplosionSource(i, j, k int, m0, t0, sigma float64) []source.SampledSource {
	dt := sigma / 20
	nt := int((t0+6*sigma)/dt) + 1
	ps := source.PointSource{
		GI: i, GJ: j, GK: k, M0: m0,
		Tensor: source.Explosion,
		STF:    source.GaussianPulse(t0, sigma),
	}
	return []source.SampledSource{ps.Sample(dt, nt)}
}

// HaskellRupture generates a kinematic finite-fault source (dSrcG).
type HaskellRupture = source.HaskellSpec

// M8FaultSpec builds a DFR fault specification with the paper's M8 initial
// stress recipe (§VII.A): depth-dependent normal stress, Von Kármán random
// shear stress, velocity strengthening near the surface, Dc taper, and a
// circular nucleation patch.
func M8FaultSpec(j0, i0, i1, k0, k1 int, h float64, nucI, nucK, nucRadius int, seed int64) *FaultSpec {
	spec := rupture.M8StressSpec(i1-i0, k1-k0, h)
	spec.Seed = seed
	tau, sn, fr := spec.Build()
	rupture.Nucleate(tau, sn, fr, nucI-i0, nucK-k0, nucRadius, 0.01)
	return &FaultSpec{
		J0: j0, I0: i0, I1: i1, K0: k0, K1: k1,
		Tau0: tau, SigmaN: sn, Friction: fr,
		RecordEvery: 2,
	}
}

// BooreAtkinson2008 and CampbellBozorgnia2008 are the Fig 23 NGA curves.
func BooreAtkinson2008() GMPE     { return analysis.BooreAtkinson2008{} }
func CampbellBozorgnia2008() GMPE { return analysis.CampbellBozorgnia2008{} }

// PGVH returns the peak RSS horizontal velocity of a seismogram.
func PGVH(s Seismogram) float64 { return analysis.PGVHFromSeries(s) }

// GeomMeanPGV returns the NGA-style geometric-mean horizontal peak.
func GeomMeanPGV(s Seismogram) float64 { return analysis.GeomMeanPGV(s) }

// bestTopo wraps the decomposition heuristic.
func bestTopo(g Dims, ranks int) mpi.Cart {
	return topoSearch(g, ranks, false)
}

// faultTopo constrains PY=1 for DFR mode.
func faultTopo(g Dims, ranks int) mpi.Cart {
	return topoSearch(g, ranks, true)
}

func topoSearch(g Dims, ranks int, py1 bool) mpi.Cart {
	best := mpi.NewCart(1, 1, 1)
	bestCost := -1.0
	for px := 1; px <= ranks; px++ {
		if ranks%px != 0 {
			continue
		}
		rem := ranks / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 || (py1 && py != 1) {
				continue
			}
			pz := rem / py
			if px*4 > g.NX || py*4 > g.NY || pz*4 > g.NZ {
				continue
			}
			cost := float64(px-1)*float64(g.NY*g.NZ) +
				float64(py-1)*float64(g.NX*g.NZ) +
				float64(pz-1)*float64(g.NX*g.NY)
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = mpi.NewCart(px, py, pz)
			}
		}
	}
	return best
}
