package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core/solver"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// haloResult is one row of the BENCH_2.json report: one (layout,
// discipline, topology, subgrid) cell of the halo-exchange sweep.
type haloResult struct {
	Layout     string  `json:"layout"`     // per-field | coalesced
	Discipline string  `json:"discipline"` // copy | zero-copy
	Topo       string  `json:"topo"`
	Subgrid    string  `json:"subgrid"` // per-rank dims
	Ranks      int     `json:"ranks"`
	NsPerStep  float64 `json:"ns_per_step"`
	// Per-step message traffic totals across all ranks, measured at the
	// runtime's delivery point (not modeled).
	VelMsgs      float64 `json:"vel_msgs"`
	StressMsgs   float64 `json:"stress_msgs"`
	VelFloats    float64 `json:"vel_floats"`
	StressFloats float64 `json:"stress_floats"`
	Checksum     float64 `json:"checksum"`
}

// haloReduction summarizes the per-phase message-count cut of one
// (topology, subgrid) pair, per-field vs coalesced.
type haloReduction struct {
	Topo             string  `json:"topo"`
	Subgrid          string  `json:"subgrid"`
	VelReduction     float64 `json:"vel_reduction"`
	StressReduction  float64 `json:"stress_reduction"`
	ZeroCopySpeedup  float64 `json:"zero_copy_speedup"` // per-field / coalesced ns/step
	ChecksumsMatched bool    `json:"checksums_matched"` // bit-identity smoke
}

// haloFit is the measured-sweep validation of the Eq. 7/8 per-message
// extension: alpha and beta fitted from the per-field zero-copy samples,
// then the per-field/coalesced time ratio predicted and compared.
type haloFit struct {
	AlphaSec       float64 `json:"alpha_sec_per_msg"`
	BetaSecPerByte float64 `json:"beta_sec_per_byte"`
	Topo           string  `json:"topo"`
	Subgrid        string  `json:"subgrid"`
	MeasuredRatio  float64 `json:"measured_ratio"`  // per-field / coalesced sec/step
	PredictedRatio float64 `json:"predicted_ratio"` // MessageCost ratio at fitted alpha,beta
	RelError       float64 `json:"rel_error"`
}

type haloReport struct {
	GeneratedBy string          `json:"generated_by"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	NumCPU      int             `json:"num_cpu"`
	Warning     string          `json:"warning,omitempty"`
	Results     []haloResult    `json:"results"`
	Reductions  []haloReduction `json:"reductions"`
	Fit         *haloFit        `json:"fit,omitempty"`
}

// halo measures the per-field vs coalesced message layouts across buffer
// disciplines, topologies and subgrid sizes, validates bit-identity via
// checksums, and fits the performance model's per-message term against
// the measured sweep. Writes BENCH_2.json (or outPath).
func halo(outPath string, short bool) {
	header("Halo: per-field vs coalesced message layouts")
	rep := haloReport{
		GeneratedBy: "cmd/benchtab -exp halo",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: ranks and pool workers share one OS thread; " +
			"timings measure serialized goroutine execution, not hardware parallelism"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}
	fmt.Println()

	// Subgrid sizes span the latency-dominated regime (16^3: coalescing's
	// target, the strong-scaling limit) through the bandwidth-dominated
	// one (64^3); step counts keep each cell's measured work comparable.
	subgrids := []grid.Dims{{NX: 16, NY: 16, NZ: 16}, {NX: 32, NY: 32, NZ: 32}, {NX: 64, NY: 64, NZ: 64}}
	stepsFor := func(d grid.Dims) int {
		switch {
		case d.NX <= 16:
			return 400
		case d.NX <= 32:
			return 100
		default:
			return 30
		}
	}
	if short {
		subgrids = subgrids[:1]
		stepsFor = func(grid.Dims) int { return 40 }
	}
	topos := []mpi.Cart{mpi.NewCart(1, 1, 1), mpi.NewCart(2, 1, 1), mpi.NewCart(2, 2, 1)}
	model := solver.Asynchronous

	type cellKey struct {
		topo, sub string
		coalesce  bool
		copyMode  bool
	}
	type cell struct {
		stats solver.HaloBenchResult
		sec   float64
	}
	cells := map[cellKey]cell{}

	// Timings come from RunHaloLayoutDuel — per-field and coalesced
	// interleaved in one world, so scheduler/heap drift between separate
	// runs cancels; message stats and checksums come from short
	// per-layout runs (counts are deterministic, time-independent).
	fmt.Printf("%-10s %-9s %-8s %-10s %14s %10s %10s %14s\n",
		"layout", "disc", "topo", "subgrid", "ns/step", "vel msgs", "str msgs", "floats/step")
	for _, topo := range topos {
		for _, sub := range subgrids {
			for _, copyMode := range []bool{false, true} {
				pfSec, coSec := solver.RunHaloLayoutDuel(solver.HaloBenchConfig{
					Topo: topo, Local: sub, Model: model,
					CopyHalo: copyMode, Threads: 1, Steps: stepsFor(sub),
				})
				for _, coalesce := range []bool{false, true} {
					r := solver.RunHaloExchangeBench(solver.HaloBenchConfig{
						Topo: topo, Local: sub, Model: model,
						CopyHalo: copyMode, Coalesce: coalesce,
						Threads: 1, Steps: 3,
					})
					sec := pfSec
					layout, disc := "per-field", "zero-copy"
					if coalesce {
						layout, sec = "coalesced", coSec
					}
					if copyMode {
						disc = "copy"
					}
					topoS := fmt.Sprintf("%dx%dx%d", topo.PX, topo.PY, topo.PZ)
					row := haloResult{
						Layout: layout, Discipline: disc,
						Topo: topoS, Subgrid: sub.String(), Ranks: topo.Size(),
						NsPerStep: sec * 1e9,
						VelMsgs:   r.VelMsgs, StressMsgs: r.StressMsgs,
						VelFloats: r.VelFloats, StressFloats: r.StressFloats,
						Checksum: r.Checksum,
					}
					rep.Results = append(rep.Results, row)
					cells[cellKey{topoS, sub.String(), coalesce, copyMode}] = cell{stats: r, sec: sec}
					fmt.Printf("%-10s %-9s %-8s %-10s %14.0f %10.1f %10.1f %14.0f\n",
						layout, disc, topoS, sub.String(), row.NsPerStep,
						row.VelMsgs, row.StressMsgs, row.VelFloats+row.StressFloats)
				}
			}
		}
	}

	// Per-phase reduction factors and the bit-identity smoke: the checksum
	// must agree across all four (layout, discipline) cells.
	fmt.Printf("\n%-8s %-10s %12s %12s %14s %10s\n",
		"topo", "subgrid", "vel cut", "stress cut", "zc speedup", "identical")
	for _, topo := range topos {
		if topo.Size() == 1 {
			continue // no messages to reduce
		}
		topoS := fmt.Sprintf("%dx%dx%d", topo.PX, topo.PY, topo.PZ)
		for _, sub := range subgrids {
			pf := cells[cellKey{topoS, sub.String(), false, false}]
			co := cells[cellKey{topoS, sub.String(), true, false}]
			pfc := cells[cellKey{topoS, sub.String(), false, true}]
			coc := cells[cellKey{topoS, sub.String(), true, true}]
			red := haloReduction{
				Topo: topoS, Subgrid: sub.String(),
				VelReduction:    pf.stats.VelMsgs / co.stats.VelMsgs,
				StressReduction: pf.stats.StressMsgs / co.stats.StressMsgs,
				ZeroCopySpeedup: pf.sec / co.sec,
				ChecksumsMatched: pf.stats.Checksum == co.stats.Checksum &&
					pf.stats.Checksum == pfc.stats.Checksum && pf.stats.Checksum == coc.stats.Checksum,
			}
			rep.Reductions = append(rep.Reductions, red)
			fmt.Printf("%-8s %-10s %11.1fx %11.1fx %13.2fx %10v\n",
				red.Topo, red.Subgrid, red.VelReduction, red.StressReduction,
				red.ZeroCopySpeedup, red.ChecksumsMatched)
		}
	}

	// Fit alpha/beta from the zero-copy sweep, both layouts (message
	// counts vary with topology and layout, bytes with subgrid size —
	// separable), then predict the per-field/coalesced ratio on the
	// latency-dominated cell and compare against the measurement. The fit
	// is restricted to cells whose aggregate messages fit in L1
	// (<=32 KiB): that is the alpha*nmsgs + beta*bytes model's domain —
	// larger messages add cache-pipelining effects the two-term model
	// does not (and should not) price.
	const fitMaxMsgBytes = 32 << 10
	var samples []perfmodel.CommSample
	for _, topo := range topos {
		topoS := fmt.Sprintf("%dx%dx%d", topo.PX, topo.PY, topo.PZ)
		for _, sub := range subgrids {
			if 9*grid.Ghost*sub.NY*sub.NZ*4 > fitMaxMsgBytes {
				continue
			}
			for _, coalesce := range []bool{false, true} {
				r := cells[cellKey{topoS, sub.String(), coalesce, false}]
				samples = append(samples, perfmodel.CommSample{
					Msgs:  int(r.stats.VelMsgs + r.stats.StressMsgs + 0.5),
					Bytes: (r.stats.VelFloats + r.stats.StressFloats) * 4,
					Sec:   r.sec,
				})
			}
		}
	}
	alpha, beta, ok := perfmodel.FitAlphaBeta(samples)
	if ok {
		// Validate on the latency-dominated cell, where the layouts differ
		// most and the ratio is least noise-sensitive.
		sub := subgrids[0]
		topoS := "2x2x1"
		pf := cells[cellKey{topoS, sub.String(), false, false}]
		co := cells[cellKey{topoS, sub.String(), true, false}]
		predPF := perfmodel.MessageCost(alpha, beta, int(pf.stats.VelMsgs+pf.stats.StressMsgs+0.5), (pf.stats.VelFloats+pf.stats.StressFloats)*4)
		predCO := perfmodel.MessageCost(alpha, beta, int(co.stats.VelMsgs+co.stats.StressMsgs+0.5), (co.stats.VelFloats+co.stats.StressFloats)*4)
		fit := &haloFit{
			AlphaSec: alpha, BetaSecPerByte: beta,
			Topo: topoS, Subgrid: sub.String(),
			MeasuredRatio:  pf.sec / co.sec,
			PredictedRatio: predPF / predCO,
		}
		fit.RelError = abs(fit.PredictedRatio-fit.MeasuredRatio) / fit.MeasuredRatio
		rep.Fit = fit
		fmt.Printf("\nfitted alpha = %.3g s/msg, beta = %.3g s/B\n", alpha, beta)
		fmt.Printf("per-field/coalesced ratio on %s %s: measured %.2f, predicted %.2f (rel err %.1f%%)\n",
			fit.Topo, fit.Subgrid, fit.MeasuredRatio, fit.PredictedRatio, 100*fit.RelError)
	} else {
		fmt.Println("\nalpha/beta fit skipped: samples cannot separate the terms")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: write %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d rows)\n", outPath, len(rep.Results))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
