package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core/fd"
	"repro/internal/core/sched"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/medium"
	"repro/internal/mpi"
)

// engineResult is one row of the machine-readable benchmark report.
type engineResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MCellsPerS  float64 `json:"mcells_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// engineReport is the BENCH_1.json schema: environment first, so a reader
// can judge whether threaded rows had hardware parallelism available.
type engineReport struct {
	GeneratedBy string         `json:"generated_by"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Warning     string         `json:"warning,omitempty"`
	Results     []engineResult `json:"results"`
}

// engine measures the three layers of the persistent execution engine —
// pool vs spawn scheduling, threaded overlap in the full solver, and the
// zero-copy message path — and writes the rows to outPath as JSON.
func engine(outPath string) {
	header("Engine: persistent pool, threaded overlap, zero-copy messaging")
	rep := engineReport{
		GeneratedBy: "cmd/benchtab -exp engine",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d (threaded rows need >1 for real speedup)\n",
		rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: pool workers and ranks share one OS thread; " +
			"threaded and overlap rows measure scheduling overhead, not parallel speedup"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}
	fmt.Println()

	add := func(name string, cells int, r testing.BenchmarkResult) {
		row := engineResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		if cells > 0 && r.T > 0 {
			row.MCellsPerS = float64(cells) * float64(r.N) / r.T.Seconds() / 1e6
		}
		rep.Results = append(rep.Results, row)
		fmt.Printf("%-36s %14.0f ns/op %10.2f Mcells/s %8d B/op %6d allocs/op\n",
			name, row.NsPerOp, row.MCellsPerS, row.BytesPerOp, row.AllocsPerOp)
	}

	// Layer 1: scheduling. Same kernels, same thread count; spawn-per-call
	// k-slabs vs the persistent pool draining j/k tiles.
	d := grid.Dims{NX: 64, NY: 64, NZ: 64}
	dc, err := decomp.New(d, mpi.NewCart(1, 1, 1))
	if err != nil {
		panic(err)
	}
	m := medium.FromCVM(cvm.HardRock(), dc, dc.SubFor(0), 200)
	dt := m.StableDt(0.5)
	box := fd.FullBox(d)
	for _, threads := range []int{1, 2, 4} {
		th := threads
		add(fmt.Sprintf("pool-vs-spawn/spawn/threads=%d", th), d.Cells(),
			testing.Benchmark(func(b *testing.B) {
				s := fd.NewState(d)
				s.VX.Set(32, 32, 32, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fd.UpdateVelocityParallel(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, th)
					fd.UpdateStressParallel(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, th)
				}
			}))
		add(fmt.Sprintf("pool-vs-spawn/pool/threads=%d", th), d.Cells(),
			testing.Benchmark(func(b *testing.B) {
				p := sched.NewPool(th)
				defer p.Close()
				s := fd.NewState(d)
				s.VX.Set(32, 32, 32, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fd.UpdateVelocityTiled(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, p)
					fd.UpdateStressTiled(s, m, dt, box, fd.Blocked, fd.DefaultBlocking, p)
				}
			}))
	}

	// Layer 2: the overlap model end to end, serial vs pooled.
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	og := grid.Dims{NX: 128, NY: 128, NZ: 128}
	for _, threads := range []int{1, 4} {
		th := threads
		add(fmt.Sprintf("overlap/threads=%d", th), og.Cells()*2,
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := solver.Run(q, solver.Options{
						Global: og, H: 100, Steps: 2,
						Topo: mpi.NewCart(2, 1, 1),
						Comm: solver.AsyncOverlap, Threads: th,
						Sources: []source.SampledSource{(source.PointSource{
							GI: 64, GJ: 64, GK: 64, M0: 1e15,
							Tensor: source.Explosion, STF: source.GaussianPulse(0.05, 0.01),
						}).Sample(0.002, 100)},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}))
	}

	// Layer 3: message path. One ghost face of a 64^3 subgrid; the copy
	// path allocates the defensive copy every send, the lending path
	// recycles pooled buffers (0 allocs/op in steady state).
	const faceN = 2 * 64 * 64
	add("halo-send/copy", 0, testing.Benchmark(func(b *testing.B) {
		w := mpi.NewWorld(2)
		b.ResetTimer()
		w.Run(func(c *mpi.Comm) {
			buf := make([]float32, faceN)
			if c.Rank() == 0 {
				for i := 0; i < b.N; i++ {
					c.Send(1, 1, buf)
				}
			} else {
				for i := 0; i < b.N; i++ {
					c.Recv(buf, 0, 1)
				}
			}
		})
	}))
	add("halo-send/zero-copy", 0, testing.Benchmark(func(b *testing.B) {
		w := mpi.NewWorld(2)
		b.ResetTimer()
		w.Run(func(c *mpi.Comm) {
			if c.Rank() == 0 {
				src := make([]float32, faceN)
				for i := 0; i < b.N; i++ {
					out := mpi.GetBuffer(faceN)
					copy(out, src)
					c.SendOwned(1, 1, out)
				}
			} else {
				for i := 0; i < b.N; i++ {
					in, _ := c.MustRecvTake(0, 1)
					mpi.PutBuffer(in)
				}
			}
		})
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: write %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d rows)\n", outPath, len(rep.Results))
}
