package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/telemetry"
	"repro/internal/tuner"
)

// kernelVariantRun is one telemetry-instrumented run of one kernel variant.
type kernelVariantRun struct {
	Variant       string  `json:"variant"`
	StressSecStep float64 `json:"stress_sec_per_step"` // Stress + Attenuation spans
	VelSecStep    float64 `json:"velocity_sec_per_step"`
	StepSec       float64 `json:"step_sec"`
	Checksum      string  `json:"checksum"` // FNV-64a over seismogram + PGV bits
}

// kernelGridRun pairs the two-pass reference against the fused sweep on one
// grid and reports the measured stress-phase win.
type kernelGridRun struct {
	Grid          string           `json:"grid"`
	Steps         int              `json:"steps"`
	TwoPass       kernelVariantRun `json:"two_pass"` // Precomp + ApplyTiled
	Fused         kernelVariantRun `json:"fused"`
	BitIdentical  bool             `json:"bit_identical"`
	StressSpeedup float64          `json:"stress_phase_speedup"` // two-pass / fused
}

// kernelBandwidthModel is the analytic per-cell traffic accounting behind
// the fused win: float32 counts for the stress phase with attenuation on.
// Two-pass: elastic pass (3 velocity reads + 6 stress read-modify-writes +
// 5 precomputed material reads = 27 floats) then attenuation pass (3
// velocity reads + 6 stress RMW + 6 memory-variable RMW + 2 modulus-defect
// reads = 29 floats). Fused: one pass touching each of those streams once
// (3 + 12 + 5 + 12 + 2 = 34 floats). Stencil-neighbor reuse lands in cache
// on both paths, so the streamed-bytes comparison is like for like.
type kernelBandwidthModel struct {
	TwoPassBytesPerCell int    `json:"two_pass_bytes_per_cell"`
	FusedBytesPerCell   int    `json:"fused_bytes_per_cell"`
	Note                string `json:"note"`
}

// kernelAutotuneReport records one real autotuner sweep: every candidate's
// measured cost and the cached winner.
type kernelAutotuneReport struct {
	Dims      string               `json:"dims"`
	Threads   int                  `json:"threads"`
	Winner    string               `json:"winner"`
	JBlock    int                  `json:"jblock"`
	KBlock    int                  `json:"kblock"`
	NsPerCell float64              `json:"ns_per_cell"`
	Samples   []tuner.KernelSample `json:"samples"`
}

type kernelReport struct {
	GeneratedBy string               `json:"generated_by"`
	GOOS        string               `json:"goos"`
	GOARCH      string               `json:"goarch"`
	GOMAXPROCS  int                  `json:"gomaxprocs"`
	NumCPU      int                  `json:"num_cpu"`
	Warning     string               `json:"warning,omitempty"`
	Bandwidth   kernelBandwidthModel `json:"bandwidth_model"`
	Grids       []kernelGridRun      `json:"grids"`
	Autotune    kernelAutotuneReport `json:"autotune"`
}

// kernelsRun executes one serial telemetry-instrumented run with the given
// kernel variant; the scenario exercises the full fused path (attenuation,
// sponge, free surface, PGV fold).
func kernelsRun(g grid.Dims, variant fd.Variant, steps int) *solver.Result {
	q := cvm.SoCal(float64(g.NX)*100, float64(g.NY)*100, float64(g.NZ)*100, 500)
	src := source.PointSource{
		GI: g.NX / 2, GJ: g.NY / 2, GK: g.NZ / 2, M0: 1e15,
		Tensor: source.Explosion, STF: source.GaussianPulse(0.06, 0.02),
	}
	res, err := solver.Run(q, solver.Options{
		Global: g, H: 100, Steps: steps, Topo: mpi.NewCart(1, 1, 1),
		Comm: solver.AsyncReduced, Threads: 1,
		Variant: variant, Blocking: fd.DefaultBlocking,
		ABC: solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: true,
		Sources:   []source.SampledSource{src.Sample(0.002, 200)},
		Receivers: [][3]int{{g.NX / 2, g.NY / 2, 0}, {2, 2, 0}},
		TrackPGV:  true,
		Telemetry: &telemetry.Options{},
	})
	if err != nil {
		panic(err)
	}
	return res
}

// kernelChecksum hashes the exact bits of every observable a run produces:
// seismograms and the four PGV maps. Equal checksums mean bit-identical
// output.
func kernelChecksum(res *solver.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(v float32) {
		b := math.Float32bits(v)
		buf[0], buf[1], buf[2], buf[3] = byte(b), byte(b>>8), byte(b>>16), byte(b>>24)
		h.Write(buf[:4])
	}
	put64 := func(v float64) {
		b := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range res.Seismograms {
		for _, smp := range s {
			put32(smp[0])
			put32(smp[1])
			put32(smp[2])
		}
	}
	for _, m := range [][]float64{res.PGVH, res.PGVX, res.PGVY, res.PGVZ} {
		for _, v := range m {
			put64(v)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func kernelVariantRow(g grid.Dims, v fd.Variant, steps int) kernelVariantRun {
	res := kernelsRun(g, v, steps)
	rep := res.Telemetry
	return kernelVariantRun{
		Variant:       v.String(),
		StressSecStep: rep.MeanStepSec(telemetry.Stress, telemetry.Attenuation),
		VelSecStep:    rep.MeanStepSec(telemetry.Velocity),
		StepSec:       rep.MeanStepSec(telemetry.Velocity, telemetry.Stress, telemetry.Attenuation, telemetry.Boundary, telemetry.Output),
		Checksum:      kernelChecksum(res),
	}
}

// kernels benchmarks the fused-sweep kernel engine against the two-pass
// reference (Precomp elastic stress + coarse-grained attenuation as a
// separate pass): per-grid stress-phase seconds from telemetry, exact
// output checksums proving bit identity, the analytic bytes-per-cell model
// the win comes from, and one real autotuner sweep. Writes BENCH_4.json
// (or outPath).
func kernels(outPath string, short bool) {
	header("Kernels: fused sweep vs two-pass stress+attenuation")
	rep := kernelReport{
		GeneratedBy: "cmd/benchtab -exp kernels",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Bandwidth: kernelBandwidthModel{
			TwoPassBytesPerCell: 4 * (27 + 29),
			FusedBytesPerCell:   4 * 34,
			Note: "stress-phase float32 streams per cell with attenuation on; " +
				"fused touches each stress/memory-variable stream once instead of twice",
		},
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: timings measure serialized goroutine execution, " +
			"not hardware parallelism; the stress-phase comparison is still serial-vs-serial and fair"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}

	grids := []grid.Dims{{NX: 32, NY: 32, NZ: 24}, {NX: 48, NY: 48, NZ: 32}, {NX: 64, NY: 64, NZ: 40}}
	steps := 100
	if short {
		grids = []grid.Dims{{NX: 24, NY: 24, NZ: 16}}
		steps = 40
	}

	fmt.Printf("\n%-12s %14s %14s %10s %14s\n", "grid", "two-pass_s/st", "fused_s/st", "speedup", "bit-identical")
	for _, g := range grids {
		two := kernelVariantRow(g, fd.Precomp, steps)
		fus := kernelVariantRow(g, fd.Fused, steps)
		run := kernelGridRun{
			Grid:         fmt.Sprintf("%dx%dx%d", g.NX, g.NY, g.NZ),
			Steps:        steps,
			TwoPass:      two,
			Fused:        fus,
			BitIdentical: two.Checksum == fus.Checksum,
		}
		if fus.StressSecStep > 0 {
			run.StressSpeedup = two.StressSecStep / fus.StressSecStep
		}
		rep.Grids = append(rep.Grids, run)
		fmt.Printf("%-12s %14.6f %14.6f %9.2fx %14v\n",
			run.Grid, two.StressSecStep, fus.StressSecStep, run.StressSpeedup, run.BitIdentical)
		if !run.BitIdentical {
			fmt.Fprintf(os.Stderr, "benchtab: kernels: fused output diverged from two-pass on %s\n", run.Grid)
			os.Exit(1)
		}
	}

	// One real autotuner sweep, against a throwaway profile so the report
	// always shows fresh measurements.
	tmp, err := os.MkdirTemp("", "benchtab-kernels-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: kernels: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)
	tuneDims := grids[len(grids)-1]
	choice, samples, err := tuner.AutotuneKernels(tuner.AutotuneOptions{
		Dims: tuneDims, Threads: 1, Attenuation: true,
		CachePath: filepath.Join(tmp, "profile.json"),
		Quick:     short,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: kernels: autotune: %v\n", err)
		os.Exit(1)
	}
	rep.Autotune = kernelAutotuneReport{
		Dims:    fmt.Sprintf("%dx%dx%d", tuneDims.NX, tuneDims.NY, tuneDims.NZ),
		Threads: 1,
		Winner:  choice.Variant.String(),
		JBlock:  choice.Blocking.JBlock, KBlock: choice.Blocking.KBlock,
		NsPerCell: choice.NsPerCell,
		Samples:   samples,
	}
	fmt.Printf("\nautotune %s: winner %s {J:%d K:%d} at %.2f ns/cell (%d candidates)\n",
		rep.Autotune.Dims, rep.Autotune.Winner, rep.Autotune.JBlock, rep.Autotune.KBlock,
		rep.Autotune.NsPerCell, len(samples))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: kernels: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: kernels: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", outPath)
}
