package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// ttileDepthRun is one serial timed run of the solver at one temporal depth.
type ttileDepthRun struct {
	Depth         int     `json:"depth"`
	StepSec       float64 `json:"step_sec"`          // stepping wall time / steps
	NsPerCellStep float64 `json:"ns_per_cell_step"`  // StepSec / cells
	Speedup       float64 `json:"speedup_vs_depth1"` // depth-1 StepSec / StepSec
	Checksum      string  `json:"checksum"`          // FNV-64a over seismogram + PGV bits
}

// ttileGridRun is the depth sweep on one grid; the checksum of every depth
// must match depth 1 exactly (enforced, the run aborts otherwise).
type ttileGridRun struct {
	Grid         string          `json:"grid"`
	Steps        int             `json:"steps"`
	Depths       []ttileDepthRun `json:"depths"`
	BitIdentical bool            `json:"bit_identical"`
	BestSpeedup  float64         `json:"best_speedup"`
}

// ttileMsgRow is the analytic halo-traffic accounting of one (topology,
// subgrid, layout, depth) cell, summed across ranks and amortized per step:
// depth 1 from the classic two-phase exchange (solver.HaloStats), depth > 1
// from the deep super-step exchange (solver.TemporalHaloStats, divided by
// the depth).
type ttileMsgRow struct {
	Topo          string  `json:"topo"`
	Subgrid       string  `json:"subgrid"`
	Layout        string  `json:"layout"` // per-field | coalesced
	Depth         int     `json:"depth"`
	MsgsPerStep   float64 `json:"msgs_per_step"`
	FloatsPerStep float64 `json:"floats_per_step"`
	MsgReduction  float64 `json:"msg_reduction_vs_depth1"`
}

// ttileDuelRow is one measured round of the temporal halo duel
// (solver.RunTemporalHaloDuel): the classic two-exchanges-per-step
// protocol against the deep super-step exchange at depth T, in one world,
// on a strong-scaled grid. AlphaUs is the emulated per-message sender
// overhead armed via mpi.World.SetLinkLatency — 0 is the raw in-process
// transport, whose per-message cost (~0.1µs) is two orders of magnitude
// below a real interconnect, so the α=0 rows show the deep exchange
// losing on bytes alone and the α>0 rows show where it wins: the
// per-message term, which is what running one exchange per T steps
// attacks. The ns/cell/step columns amortize the per-step exchange wall
// time over the global grid.
type ttileDuelRow struct {
	Grid                 string  `json:"grid"` // global grid = topo × subgrid
	Topo                 string  `json:"topo"`
	Subgrid              string  `json:"subgrid"`
	Layout               string  `json:"layout"` // per-field | coalesced
	Depth                int     `json:"depth"`
	AlphaUs              float64 `json:"alpha_us"`
	ClassicUsPerStep     float64 `json:"classic_us_per_step"`
	DeepUsPerStep        float64 `json:"deep_us_per_step"`
	ClassicNsPerCellStep float64 `json:"classic_ns_per_cell_step"`
	DeepNsPerCellStep    float64 `json:"deep_ns_per_cell_step"`
	Speedup              float64 `json:"speedup"` // classic / deep
}

type ttileReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Warning     string `json:"warning,omitempty"`
	// MultiRankChecksum/SerialChecksum: one distributed coalesced depth-2
	// run against the serial depth-1 reference on the same global grid.
	SerialChecksum    string         `json:"serial_checksum"`
	MultiRankChecksum string         `json:"multi_rank_checksum"`
	Grids             []ttileGridRun `json:"grids"`
	Messages          []ttileMsgRow  `json:"messages"`
	// AlphaNote documents the emulated per-message overhead of the duel
	// rows; DuelBestSpeedup is the best α>0 depth≥2 speedup (enforced
	// ≥1.15 in full mode).
	AlphaNote       string         `json:"alpha_note,omitempty"`
	HaloDuel        []ttileDuelRow `json:"halo_duel,omitempty"`
	DuelBestSpeedup float64        `json:"duel_best_speedup,omitempty"`
}

// ttileOptions is the common scenario of the depth sweep: the full
// production feature set the tiled engine covers (sponge, free surface,
// attenuation, receivers, PGV), so checksum equality certifies the whole
// observable surface.
func ttileOptions(g grid.Dims, steps, depth int, topo mpi.Cart, coalesce bool) (cvm.Querier, solver.Options) {
	q := cvm.SoCal(float64(g.NX)*100, float64(g.NY)*100, float64(g.NZ)*100, 500)
	src := source.PointSource{
		GI: g.NX / 2, GJ: g.NY / 2, GK: g.NZ / 2, M0: 1e15,
		Tensor: source.Explosion, STF: source.GaussianPulse(0.06, 0.02),
	}
	return q, solver.Options{
		Global: g, H: 100, Steps: steps, Topo: topo,
		Comm: solver.Asynchronous, Threads: 1, CoalesceHalo: coalesce,
		Variant: fd.Fused, Blocking: fd.DefaultBlocking, TemporalDepth: depth,
		ABC: solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: true,
		Sources:   []source.SampledSource{src.Sample(0.002, 200)},
		Receivers: [][3]int{{g.NX / 2, g.NY / 2, 0}, {2, 2, 0}},
		TrackPGV:  true,
	}
}

// ttileTimedRun executes one serial run through the Stepper API so the
// timer brackets only the stepping loop (setup — CVM sampling, medium
// precomputation — is excluded; it is identical across depths anyway).
func ttileTimedRun(g grid.Dims, steps, depth int) (float64, *solver.Result) {
	q, opt := ttileOptions(g, steps, depth, mpi.NewCart(1, 1, 1), false)
	dc, opt, err := solver.Prepare(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: ttile: %v\n", err)
		os.Exit(1)
	}
	var sec float64
	var res *solver.Result
	w := mpi.NewWorld(1)
	w.Run(func(c *mpi.Comm) {
		st, err := solver.NewStepper(c, q, dc, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: ttile: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		t0 := time.Now()
		for !st.Done() {
			st.Step()
		}
		sec = time.Since(t0).Seconds()
		res, err = st.Finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: ttile: %v\n", err)
			os.Exit(1)
		}
	})
	return sec / float64(steps), res
}

// ttileRunChecksum runs the scenario through solver.Run (any topology) and
// hashes its observables.
func ttileRunChecksum(g grid.Dims, steps, depth int, topo mpi.Cart, coalesce bool) string {
	q, opt := ttileOptions(g, steps, depth, topo, coalesce)
	res, err := solver.Run(q, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: ttile: %v\n", err)
		os.Exit(1)
	}
	return kernelChecksum(res)
}

// ttileTopoStats sums a layout's analytic per-step halo traffic across all
// ranks of a topology at the given temporal depth.
func ttileTopoStats(topo mpi.Cart, sub grid.Dims, coalesced bool, depth int) (msgs, floats float64) {
	for r := 0; r < topo.Size(); r++ {
		var mask [3][2]bool
		for ax := 0; ax < 3; ax++ {
			mask[ax][0] = topo.Neighbor(r, ax, -1) >= 0
			mask[ax][1] = topo.Neighbor(r, ax, +1) >= 0
		}
		if depth <= 1 {
			st := solver.HaloStats(sub, mask, solver.Asynchronous, coalesced)
			msgs += float64(st.Msgs())
			floats += float64(st.Floats)
			continue
		}
		st := solver.TemporalHaloStats(sub, mask, coalesced, depth, true, true)
		msgs += float64(st.Msgs()) / float64(depth)
		floats += float64(st.Floats) / float64(depth)
	}
	return
}

// ttile benchmarks the time-tiled execution engine: ns/cell/step across
// temporal depths {1, 2, 4} on several grids with exact output checksums
// proving bit identity, a distributed depth-2 run checked against the
// serial reference, the analytic per-step message accounting showing the
// ~T-fold (2T-fold when coalesced) reduction a super-step buys, and the
// temporal halo duel measuring that reduction as wall time under emulated
// per-message interconnect overhead (the ≥1.15× acceptance gate). Writes
// BENCH_6.json (or outPath).
func ttile(outPath string, short bool) {
	header("Temporal tiling: steps per halo exchange")
	rep := ttileReport{
		GeneratedBy: "cmd/benchtab -exp ttile",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: timings measure serialized goroutine execution, " +
			"not hardware parallelism; the depth comparison is still serial-vs-serial and fair"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}

	// Grids span in-cache (the first) through DRAM-resident (the rest):
	// the 15 wavefields of 96x96x64 cells are ~35 MB, past typical LLCs,
	// which is where trading halo width for sweep locality pays.
	grids := []grid.Dims{
		{NX: 48, NY: 48, NZ: 32},
		{NX: 96, NY: 96, NZ: 64},
		{NX: 128, NY: 96, NZ: 80},
	}
	steps, reps := 16, 3
	depths := []int{1, 2, 4}
	if short {
		grids = []grid.Dims{{NX: 24, NY: 24, NZ: 16}}
		steps, reps = 10, 1 // 10 steps: exercises the partial super-step
	}

	fmt.Printf("\n%-12s %6s %14s %16s %9s %14s\n",
		"grid", "depth", "step_sec", "ns/cell/step", "speedup", "bit-identical")
	for _, g := range grids {
		run := ttileGridRun{Grid: fmt.Sprintf("%dx%dx%d", g.NX, g.NY, g.NZ), Steps: steps}
		cells := float64(g.Cells())

		// Interleaved min-of-reps: each rep cycles through all depths, and
		// the minimum per depth is reported, so scheduler and allocator
		// drift between runs hits every depth alike instead of biasing the
		// ratio.
		best := make(map[int]float64, len(depths))
		sums := make(map[int]string, len(depths))
		for r := 0; r < reps; r++ {
			for _, depth := range depths {
				sec, res := ttileTimedRun(g, steps, depth)
				if old, ok := best[depth]; !ok || sec < old {
					best[depth] = sec
				}
				sums[depth] = kernelChecksum(res)
			}
		}

		var ref ttileDepthRun
		for _, depth := range depths {
			row := ttileDepthRun{
				Depth:         depth,
				StepSec:       best[depth],
				NsPerCellStep: best[depth] * 1e9 / cells,
				Checksum:      sums[depth],
			}
			if depth == 1 {
				ref = row
				row.Speedup = 1
			} else {
				row.Speedup = ref.StepSec / row.StepSec
			}
			run.Depths = append(run.Depths, row)
			if row.Speedup > run.BestSpeedup && depth > 1 {
				run.BestSpeedup = row.Speedup
			}
			identical := row.Checksum == ref.Checksum
			fmt.Printf("%-12s %6d %14.6f %16.2f %8.2fx %14v\n",
				run.Grid, depth, row.StepSec, row.NsPerCellStep, row.Speedup, identical)
			if !identical {
				fmt.Fprintf(os.Stderr,
					"benchtab: ttile: depth-%d output diverged from depth-1 on %s (%s != %s)\n",
					depth, run.Grid, row.Checksum, ref.Checksum)
				os.Exit(1)
			}
		}
		run.BitIdentical = true
		rep.Grids = append(rep.Grids, run)
	}

	// One distributed coalesced super-step run against the serial classic
	// reference: same global grid, 2x2x1 ranks, depth 2.
	mg := grids[0]
	rep.SerialChecksum = ttileRunChecksum(mg, steps, 1, mpi.NewCart(1, 1, 1), false)
	rep.MultiRankChecksum = ttileRunChecksum(mg, steps, 2, mpi.NewCart(2, 2, 1), true)
	fmt.Printf("\ndistributed 2x2x1 depth-2 coalesced vs serial depth-1 on %s: %v\n",
		rep.Grids[0].Grid, rep.MultiRankChecksum == rep.SerialChecksum)
	if rep.MultiRankChecksum != rep.SerialChecksum {
		fmt.Fprintf(os.Stderr, "benchtab: ttile: distributed depth-2 output diverged from serial depth-1\n")
		os.Exit(1)
	}

	// Analytic per-step message accounting: the deep exchange runs once per
	// T steps, so per-field messages fall from 9 per neighbor per step to
	// 15/T, and coalesced from 2 per neighbor per step to 1/T.
	topo := mpi.NewCart(2, 2, 1)
	sub := grid.Dims{NX: grids[0].NX / 2, NY: grids[0].NY / 2, NZ: grids[0].NZ}
	fmt.Printf("\n%-8s %-10s %-10s %6s %14s %16s %12s\n",
		"topo", "subgrid", "layout", "depth", "msgs/step", "floats/step", "reduction")
	for _, coalesced := range []bool{false, true} {
		layout := "per-field"
		if coalesced {
			layout = "coalesced"
		}
		var base float64
		for _, depth := range depths {
			msgs, floats := ttileTopoStats(topo, sub, coalesced, depth)
			row := ttileMsgRow{
				Topo:    fmt.Sprintf("%dx%dx%d", topo.PX, topo.PY, topo.PZ),
				Subgrid: sub.String(), Layout: layout, Depth: depth,
				MsgsPerStep: msgs, FloatsPerStep: floats,
			}
			if depth == 1 {
				base = msgs
				row.MsgReduction = 1
			} else {
				row.MsgReduction = base / msgs
			}
			rep.Messages = append(rep.Messages, row)
			fmt.Printf("%-8s %-10s %-10s %6d %14.1f %16.0f %11.1fx\n",
				row.Topo, row.Subgrid, row.Layout, row.Depth,
				row.MsgsPerStep, row.FloatsPerStep, row.MsgReduction)
		}
	}

	// Temporal halo duel on strong-scaled subgrids, with and without
	// emulated per-message interconnect overhead. The raw in-process
	// transport has α ≈ 0.1µs and memcpy-class bandwidth, a regime no
	// production interconnect occupies; the α=8µs rows match the Jaguar-
	// class Alpha of the perfmodel machine descriptions and are where the
	// super-step exchange's ~T-fold (2T-fold coalesced) message reduction
	// becomes a measured win.
	rep.AlphaNote = "alpha_us > 0 rows run under mpi.World.SetLinkLatency: every transmission " +
		"charges the sender that fixed per-message overhead (busy-wait, no checksum side " +
		"effects); 8us matches the Jaguar-class Alpha of internal/perfmodel machine descriptions. " +
		"alpha_us = 0 is the raw in-process transport (alpha ~ 0.1us), which no production " +
		"interconnect resembles."
	duelTopo := mpi.NewCart(2, 2, 2)
	duelSubs := []grid.Dims{{NX: 16, NY: 16, NZ: 16}, {NX: 32, NY: 32, NZ: 32}}
	duelAlphas := []time.Duration{0, 8 * time.Microsecond}
	duelSteps := 120
	duelDepths := []int{2, 4}
	duelLayouts := []bool{false, true}
	if short {
		duelSubs = duelSubs[:1]
		duelAlphas = duelAlphas[1:]
		duelSteps = 40
		duelDepths = []int{2}
		duelLayouts = []bool{false}
	}
	fmt.Printf("\n%-10s %-10s %-10s %6s %9s %13s %13s %9s\n",
		"grid", "subgrid", "layout", "depth", "alpha_us", "classic_us", "deep_us", "speedup")
	for _, sub := range duelSubs {
		global := grid.Dims{NX: sub.NX * duelTopo.PX, NY: sub.NY * duelTopo.PY, NZ: sub.NZ * duelTopo.PZ}
		cells := float64(global.Cells())
		for _, coalesced := range duelLayouts {
			layout := "per-field"
			if coalesced {
				layout = "coalesced"
			}
			for _, alpha := range duelAlphas {
				for _, depth := range duelDepths {
					cfg := solver.HaloBenchConfig{
						Topo: duelTopo, Local: sub, Model: solver.Asynchronous,
						Coalesce: coalesced, Threads: 1, Steps: duelSteps,
						EmulatedAlpha: alpha,
					}
					classic, deep := solver.RunTemporalHaloDuel(cfg, depth)
					row := ttileDuelRow{
						Grid:                 fmt.Sprintf("%dx%dx%d", global.NX, global.NY, global.NZ),
						Topo:                 fmt.Sprintf("%dx%dx%d", duelTopo.PX, duelTopo.PY, duelTopo.PZ),
						Subgrid:              sub.String(),
						Layout:               layout,
						Depth:                depth,
						AlphaUs:              alpha.Seconds() * 1e6,
						ClassicUsPerStep:     classic * 1e6,
						DeepUsPerStep:        deep * 1e6,
						ClassicNsPerCellStep: classic * 1e9 / cells,
						DeepNsPerCellStep:    deep * 1e9 / cells,
						Speedup:              classic / deep,
					}
					rep.HaloDuel = append(rep.HaloDuel, row)
					if row.AlphaUs > 0 && row.Speedup > rep.DuelBestSpeedup {
						rep.DuelBestSpeedup = row.Speedup
					}
					fmt.Printf("%-10s %-10s %-10s %6d %9.1f %13.1f %13.1f %8.2fx\n",
						row.Grid, row.Subgrid, row.Layout, row.Depth, row.AlphaUs,
						row.ClassicUsPerStep, row.DeepUsPerStep, row.Speedup)
				}
			}
		}
	}
	if !short && rep.DuelBestSpeedup < 1.15 {
		fmt.Fprintf(os.Stderr,
			"benchtab: ttile: best emulated-alpha duel speedup %.2fx < 1.15x\n", rep.DuelBestSpeedup)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: ttile: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: ttile: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", outPath)
}
