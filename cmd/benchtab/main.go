// Command benchtab regenerates every table and figure of the paper's
// evaluation: -exp selects one of table1, table2, table3, fig3, fig11,
// fig12, fig13, fig14, fig19, fig21, fig22, fig23, sustained, the
// benchmark experiments (engine, halo, phases, kernels, ft, ttile, lts,
// scale, io, farm), or all. Petascale quantities come from the validated performance model
// (internal/perfmodel); physics quantities come from scaled production
// runs of the real solver.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/aval"
	"repro/internal/core/rupture"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, table2, table3, fig3, fig11, fig12, fig13, fig14, fig19, fig21, fig22, fig23, sustained, engine, halo, phases, kernels, ft, ttile, lts, scale, io, farm, all)")
	out := flag.String("out", "", "output path for a benchmark experiment's JSON report (default: BENCH_1.json for engine, BENCH_2.json for halo, BENCH_3.json for phases, BENCH_4.json for kernels)")
	short := flag.Bool("short", false, "reduced sweep for CI smoke runs (halo, phases, kernels)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: memprofile: %v\n", err)
			}
		}()
	}

	// Benchmark experiments resolve their own default report path.
	outFor := func(def string) string {
		if *out != "" {
			return *out
		}
		return def
	}
	exps := map[string]func(){
		"table1":    table1,
		"table2":    table2,
		"table3":    table3,
		"fig3":      fig3,
		"fig11":     fig11,
		"fig12":     fig12,
		"fig13":     fig13,
		"fig14":     fig14,
		"fig19":     fig19,
		"fig21":     fig21to23,
		"fig22":     fig21to23,
		"fig23":     fig21to23,
		"sustained": sustained,
		"engine":    func() { engine(outFor("BENCH_1.json")) },
		"halo":      func() { halo(outFor("BENCH_2.json"), *short) },
		"phases":    func() { phases(outFor("BENCH_3.json"), *short) },
		"kernels":   func() { kernels(outFor("BENCH_4.json"), *short) },
		"ft":        func() { ftExp(outFor("BENCH_5.json"), *short) },
		"ttile":     func() { ttile(outFor("BENCH_6.json"), *short) },
		"lts":       func() { ltsExp(outFor("BENCH_7.json"), *short) },
		"scale":     func() { scale(outFor("BENCH_8.json"), *short) },
		"io":        func() { ioExp(outFor("BENCH_9.json"), *short) },
		"farm":      func() { farmExp(outFor("BENCH_10.json"), *short) },
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "sustained",
			"fig11", "fig12", "fig13", "fig14", "fig3", "fig19", "fig21"} {
			exps[name]()
		}
		return
	}
	fn := exps[*exp]
	if fn == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func header(s string) { fmt.Printf("\n=== %s ===\n", s) }

func table1() {
	header("Table 1: computers used by model for production runs")
	fmt.Printf("%-10s %-10s %-22s %-22s %8s %8s\n",
		"Computer", "Location", "Processor", "Interconnect", "Gflops", "Cores")
	for _, m := range perfmodel.Machines {
		fmt.Printf("%-10s %-10s %-22s %-22s %8.1f %8d\n",
			m.Name, m.Location, m.Processor, m.Interconnect, m.PeakGflops, m.CoresUsed)
	}
}

func table2() {
	header("Table 2: evolution of AWP-ODC (modeled sustained Tflop/s on the milestone platform)")
	// Milestone (machine, cores, grid) per version era, following Table 2/3.
	type row struct {
		ver     string
		sim     string
		machine perfmodel.Machine
		cores   int
		g       grid.Dims
		paper   float64
	}
	ts := grid.Dims{NX: 3000, NY: 1500, NZ: 400}    // 1.8e9 TeraShake
	so := grid.Dims{NX: 6000, NY: 3000, NZ: 800}    // 14.4e9 ShakeOut
	m8 := grid.Dims{NX: 20250, NY: 10125, NZ: 2125} // 436e9 M8
	rows := []row{
		{"1.0", "TeraShake-K", perfmodel.DataStar, 240, ts, 0.04},
		{"2.0", "TeraShake-D", perfmodel.DataStar, 1024, ts, 0.68},
		{"3.0", "PN MegaQuake", perfmodel.BGL, 6000, ts, 1.44},
		{"4.0", "ShakeOut-K", perfmodel.Ranger, 16000, so, 7.29},
		{"5.0", "ShakeOut-D", perfmodel.Ranger, 60000, so, 49.9},
		{"6.0", "W2W", perfmodel.Kraken, 96000, so, 86.7},
		{"7.2", "M8", perfmodel.Jaguar, 223074, m8, 220},
	}
	fmt.Printf("%-5s %-14s %-10s %8s %14s %14s\n", "Ver", "Simulation", "Machine", "Cores", "Model Tflops", "Paper Tflops")
	for _, r := range rows {
		v, _ := perfmodel.VersionByName(r.ver)
		j := perfmodel.Job{Machine: r.machine, Version: v, Global: r.g, Cores: r.cores}
		if r.sim == "M8" {
			j = perfmodel.M8Job(v) // the production configuration with I/O and aux work
		}
		fmt.Printf("%-5s %-14s %-10s %8d %14.2f %14.2f\n",
			r.ver, r.sim, r.machine.Name, r.cores, perfmodel.SustainedTflops(j), r.paper)
	}
}

func table3() {
	header("Table 3: SCEC milestone simulations (scaled demonstration runs)")
	fmt.Printf("%-18s %-26s %10s %10s %12s\n", "Simulation", "Description", "MaxFreq", "Cells", "PGVH max")
	type sim struct {
		name, desc string
		dims       grid.Dims
		h          float64
		fmax       float64
	}
	sims := []sim{
		{"TeraShake (TS-K)", "Mw7.7 kinematic, 0.5 Hz", grid.Dims{NX: 60, NY: 30, NZ: 16}, 500, 0.5},
		{"ShakeOut (SO-K)", "Mw7.8 kinematic, 1 Hz", grid.Dims{NX: 60, NY: 30, NZ: 16}, 500, 1.0},
		{"W2W", "Mw8.0 combined, 1 Hz", grid.Dims{NX: 80, NY: 30, NZ: 16}, 500, 1.0},
		{"M8", "Mw8.0 dynamic, 2 Hz", grid.Dims{NX: 80, NY: 30, NZ: 16}, 500, 2.0},
	}
	for _, s := range sims {
		q := cvm.SoCal(float64(s.dims.NX)*s.h, float64(s.dims.NY)*s.h, float64(s.dims.NZ)*s.h, 500)
		// Moment scaled with the demonstration fault area (~Mw 6.3) so
		// stress drop stays physical at this reduced scale.
		spec := source.HaskellSpec{
			GJ: s.dims.NY / 2, I0: 8, I1: s.dims.NX - 8, K0: 2, K1: 10,
			HypoI: 12, HypoK: 5, H: s.h, Mw: 6.3, Vr: 2800, RiseTime: 1.2,
			Mu: 3e10, Dt: 0.02, NT: 400, TaperCells: 2,
		}
		srcs, err := spec.Generate()
		if err != nil {
			panic(err)
		}
		res, err := solver.Run(q, solver.Options{
			Global: s.dims, H: s.h, Steps: 250,
			Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 6,
			FreeSurface: true, Attenuation: true,
			Sources: srcs, TrackPGV: true,
		})
		if err != nil {
			panic(err)
		}
		var maxPGV float64
		for _, v := range res.PGVH {
			if v > maxPGV {
				maxPGV = v
			}
		}
		fmt.Printf("%-18s %-26s %8.1fHz %10d %10.3fm/s\n", s.name, s.desc, s.fmax, s.dims.Cells(), maxPGV)
	}
}

// fig3: the ShakeOut three-code verification — production 4th-order vs the
// independent 2nd-order reference, PGV comparison at surface receivers.
func fig3() {
	header("Fig 3: multi-code verification (production 4th-order vs independent 2nd-order)")
	mat := cvm.Material{Vp: 4000, Vs: 2310, Rho: 2500}
	q := cvm.Homogeneous(mat)
	g := grid.Dims{NX: 36, NY: 36, NZ: 28}
	h, dt, steps := 100.0, 0.008, 170
	stf := source.GaussianPulse(0.35, 0.09)
	recv := [][3]int{{10, 18, 14}, {18, 10, 10}, {26, 18, 14}, {18, 26, 18}}
	prod, err := solver.Run(q, solver.Options{
		Global: g, H: h, Dt: dt, Steps: steps,
		Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 6,
		Sources: []source.SampledSource{(source.PointSource{
			GI: 18, GJ: 18, GK: 14, M0: 1e15, Tensor: source.Explosion, STF: stf,
		}).Sample(dt, steps+1)},
		Receivers: recv,
	})
	if err != nil {
		panic(err)
	}
	ref := aval.RunReference(aval.RefConfig{
		NX: g.NX, NY: g.NY, NZ: g.NZ, H: h, Dt: dt, Steps: steps, Q: q,
		SI: 18, SJ: 18, SK: 14, M0: 1e15, Tensor: source.Explosion, STF: stf,
		Receivers: recv, Sponge: 6,
	})
	fmt.Printf("%-10s %14s %14s %10s\n", "Receiver", "PGV (4th)", "PGV (2nd)", "L2 misfit")
	for r := range recv {
		rep := aval.Check("x", prod.Seismograms[r], ref[r], aval.CrossCodeTolerance)
		fmt.Printf("%-10v %14.6g %14.6g %10.4f\n", recv[r],
			analysis.PGVHFromSeries(prod.Seismograms[r]),
			analysis.PGVHFromSeries(ref[r]), rep.Misfit)
	}
}

// fig11: round-trip latency balance of the asynchronous model, measured on
// the in-process MPI runtime.
func fig11() {
	header("Fig 11: async model round-trip latency by rank pair (in-process runtime)")
	const ranks = 8
	const pings = 200
	w := mpi.NewWorld(ranks)
	lat := make([]float64, ranks)
	w.Run(func(c *mpi.Comm) {
		peer := (c.Rank() + ranks/2) % ranks
		buf := make([]float32, 256)
		start := time.Now()
		for p := 0; p < pings; p++ {
			if c.Rank() < ranks/2 {
				c.Send(peer, p, buf)
				c.Recv(buf, peer, 10000+p)
			} else {
				c.Recv(buf, peer, p)
				c.Send(peer, 10000+p, buf)
			}
		}
		lat[c.Rank()] = time.Since(start).Seconds() / pings * 1e6
	})
	sort.Float64s(lat)
	fmt.Printf("round-trip latency (us): min %.1f  median %.1f  max %.1f  spread %.1f%%\n",
		lat[0], lat[ranks/2], lat[ranks-1], 100*(lat[ranks-1]-lat[0])/lat[ranks/2])
}

func fig12() {
	header("Fig 12: execution time breakdown per step, M8 on Jaguar (model)")
	fmt.Printf("%-8s %-6s %10s %10s %10s %10s %10s\n", "Cores", "Ver", "Tcomp", "Tcomm", "Tsync", "T_IO", "Total")
	for _, cores := range []int{65610, 105456, 150120, 223074} {
		for _, ver := range []string{"6.0", "7.2"} {
			v, _ := perfmodel.VersionByName(ver)
			j := perfmodel.M8Job(v)
			j.Cores = cores
			b := perfmodel.StepTime(j)
			fmt.Printf("%-8d %-6s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
				cores, ver, b.Comp, b.Comm, b.Sync, b.IO, b.Total())
		}
	}
}

func fig13() {
	header("Fig 13: time-to-solution per step by code version, M8 settings on Jaguar (model)")
	fmt.Printf("%-6s %-42s %12s\n", "Ver", "Optimizations", "s/step")
	descr := map[string]string{
		"1.0": "baseline", "2.0": "MPI tuning", "3.0": "I/O aggregation",
		"4.0": "mesh partitioning", "5.0": "asynchronous communication",
		"6.0": "single-CPU optimization", "7.1": "cache blocking",
		"7.2": "reduced algorithm-level communication",
	}
	for _, v := range perfmodel.Versions {
		j := perfmodel.M8Job(v)
		fmt.Printf("%-6s %-42s %12.4f\n", v.Name, descr[v.Name], perfmodel.StepTime(j).Total())
	}
}

func fig14() {
	header("Fig 14: strong scaling on TeraGrid/INCITE systems (model)")
	v72, _ := perfmodel.VersionByName("7.2")
	v60, _ := perfmodel.VersionByName("6.0")
	v50, _ := perfmodel.VersionByName("5.0")
	v40, _ := perfmodel.VersionByName("4.0")
	cases := []struct {
		label  string
		m      perfmodel.Machine
		before perfmodel.Version
		after  perfmodel.Version
		g      grid.Dims
		cores  []int
	}{
		{"TeraShake 1.8e9 @ DataStar", perfmodel.DataStar, perfmodel.Versions[0], perfmodel.Versions[1],
			grid.Dims{NX: 3000, NY: 1500, NZ: 400}, []int{240, 480, 1024, 2048}},
		{"ShakeOut 14.4e9 @ Ranger", perfmodel.Ranger, v40, v50,
			grid.Dims{NX: 6000, NY: 3000, NZ: 800}, []int{4096, 16000, 32000, 60000}},
		{"ShakeOut 14.4e9 @ Kraken", perfmodel.Kraken, v40, v50,
			grid.Dims{NX: 6000, NY: 3000, NZ: 800}, []int{8192, 32768, 96000}},
		{"M8 436e9 @ Jaguar", perfmodel.Jaguar, v60, v72,
			grid.Dims{NX: 20250, NY: 10125, NZ: 2125}, []int{16384, 65610, 131072, 223074}},
	}
	for _, c := range cases {
		fmt.Printf("\n%s\n%-9s %14s %14s %12s %12s\n", c.label, "Cores", "before s/step", "after s/step", "after spdup", "after eff")
		before := perfmodel.StrongScaling(c.m, c.before, c.g, c.cores)
		after := perfmodel.StrongScaling(c.m, c.after, c.g, c.cores)
		for i := range c.cores {
			fmt.Printf("%-9d %14.4f %14.4f %12.0f %12.3f\n",
				c.cores[i], before[i].StepTime, after[i].StepTime, after[i].Speedup, after[i].Efficiency)
		}
	}
}

// fig19: the M8 source model from a scaled spontaneous-rupture run.
func fig19() {
	header("Fig 19: M8 source model statistics (scaled spontaneous rupture)")
	res := runScaledM8Rupture(700)
	st := res.FaultStats
	fmt.Printf("final slip:        max %.2f m, mean %.2f m (paper: 7.8 max / 4.5 mean)\n", st.MaxSlip, st.MeanSlip)
	fmt.Printf("peak slip rate:    %.2f m/s (paper: >10 m/s in patches)\n", st.MaxPeakRate)
	fmt.Printf("ruptured fraction: %.2f\n", st.RupturedFraction)
	fmt.Printf("mean rupture vel:  %.0f m/s; supershear fraction %.3f (paper: sub-Rayleigh + supershear patches)\n",
		st.MeanRuptureVelocity, st.SupershearFraction)
	m0 := 0.0
	dt := res.Dt
	for _, mr := range res.MomentRate {
		m0 += mr * dt
	}
	fmt.Printf("seismic moment:    %.3g N*m (Mw %.2f)\n", m0, source.M02Mw(m0))
}

// runScaledM8Rupture runs the DFR stage of the two-step M8 method on a
// laptop-scale fault.
func runScaledM8Rupture(steps int) *solver.Result {
	g := grid.Dims{NX: 120, NY: 32, NZ: 28}
	h := 200.0
	spec := rupture.M8StressSpec(100, 20, h)
	spec.Dc = 0.08
	spec.DcSurface = 0.25
	spec.DepthK = func(k int) float64 { return float64(k+2) * h * 4 } // depth-compressed profile
	tau, sn, fr := spec.Build()
	rupture.Nucleate(tau, sn, fr, 18, 10, 6, 0.02)
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	res, err := solver.Run(q, solver.Options{
		Global: g, H: h, Steps: steps,
		Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 6,
		Fault: &solver.FaultSpec{
			J0: 16, I0: 10, I1: 110, K0: 3, K1: 23,
			Tau0: tau, SigmaN: sn, Friction: fr, RecordEvery: 2,
		},
	})
	if err != nil {
		panic(err)
	}
	return res
}

// fig21to23: the scaled two-step M8 — dynamic source transferred onto the
// wave-propagation model, PGV maps, city seismograms and GMPE comparison.
func fig21to23() {
	header("Fig 21-23: scaled M8 wave propagation, PGVH and GMPE comparison")
	rup := runScaledM8Rupture(700)

	// Transfer dynamic slip rates to a kinematic source (the two-step
	// method of §VII), low-passed at 2 Hz.
	h := 400.0
	dtOut := 0.02
	mu := 3.24e10
	var srcs []source.SampledSource
	for n, series := range rup.SlipSeries {
		node := rup.SlipNodes[n]
		// Map the rupture grid onto the wave grid (half resolution).
		srcs = append(srcs, source.TransferDynamic(node[0]/2+20, 40, node[2]/2,
			series, mu, h*h, rup.SlipDt, dtOut, 2.0, 600))
	}
	g := grid.Dims{NX: 120, NY: 80, NZ: 24}
	lx, ly, lz := float64(g.NX)*h, float64(g.NY)*h, float64(g.NZ)*h
	q := cvm.SoCal(lx, ly, lz, 500)
	sbI, sbJ := int(0.62*float64(g.NX)), int(0.52*float64(g.NY))
	res, err := solver.Run(q, solver.Options{
		Global: g, H: h, Steps: 1100,
		Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 8,
		FreeSurface: true, Attenuation: true,
		Sources: srcs, TrackPGV: true,
		Receivers: [][3]int{{sbI, sbJ, 0}},
	})
	if err != nil {
		panic(err)
	}

	// Fig 21: PGVH at basin-analogue sites.
	sites := []struct {
		name   string
		fx, fy float64
	}{
		{"LA basin", 0.52, 0.40}, {"San Bernardino", 0.62, 0.52},
		{"Ventura", 0.40, 0.47}, {"Coachella", 0.78, 0.33},
		{"hard rock ref", 0.15, 0.85},
	}
	fmt.Printf("%-16s %12s\n", "Site", "PGVH (m/s)")
	var rockPGV, basinPGV float64
	for _, s := range sites {
		i := int(s.fx * float64(g.NX))
		j := int(s.fy * float64(g.NY))
		v := res.PGVH[j*g.NX+i]
		fmt.Printf("%-16s %12.4f\n", s.name, v)
		if s.name == "hard rock ref" {
			rockPGV = v
		}
		if s.name == "San Bernardino" {
			basinPGV = v
		}
	}
	if rockPGV > 0 {
		fmt.Printf("basin/rock amplification (SBB): %.1fx (paper: basins hardest hit)\n", basinPGV/rockPGV)
	}

	// §VII.C dPDA: spectral analysis of the San Bernardino-analogue
	// record (the paper finds basin-response peaks at 2-4 s periods).
	var sb []float32
	for _, v := range res.Seismograms[0] {
		sb = append(sb, v[1]) // fault-normal horizontal component
	}
	period := analysis.DominantPeriod(sb, res.Dt, 0.1, 2.0, 120)
	frac12 := analysis.BandEnergyFraction(sb, res.Dt, 1.0, 2.0, 0.05, 2.0)
	fmt.Printf("San Bernardino spectral peak: %.1f s period; 1-2 Hz energy fraction %.2f\n", period, frac12)

	// Fig 22 proxy: near-fault PGV along strike vs supershear patches.
	fmt.Printf("supershear fraction (rupture): %.3f; near-fault max PGVH %.3f m/s\n",
		rup.FaultStats.SupershearFraction, maxRow(res.PGVH, g.NX, 40))

	// Fig 23: distance-binned rock-site geometric-mean PGV vs NGA curves.
	trace := [][2]float64{{20 * h, 40 * h}, {70 * h, 40 * h}}
	var rocks []analysis.Site
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			mat := q.Query(float64(i)*h, float64(j)*h, 0)
			gm := analysis.GeomMeanFromPeaks(res.PGVX[j*g.NX+i], res.PGVY[j*g.NX+i])
			rocks = append(rocks, analysis.Site{
				DistKM: analysis.FaultTraceDistanceKM(float64(i)*h, float64(j)*h, trace),
				PGV:    gm * 100, // cm/s
				Rock:   mat.Vs > 1000,
			})
		}
	}
	m0 := 0.0
	for _, mr := range rup.MomentRate {
		m0 += mr * rup.Dt
	}
	mw := source.M02Mw(m0)
	edges := []float64{0, 2, 5, 10, 20, 40}
	bins := analysis.BinByDistance(rocks, edges)
	ba, cb := analysis.BooreAtkinson2008{}, analysis.CampbellBozorgnia2008{}
	fmt.Printf("\n%-12s %6s %12s %12s %12s (Mw %.2f; cm/s; shape comparison)\n",
		"Dist (km)", "N", "M8 median", "B&A08", "C&B08", mw)
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		rmid := (b.RMin + b.RMax) / 2
		fmt.Printf("%5.1f-%-6.1f %6d %12.3f %12.3f %12.3f\n",
			b.RMin, b.RMax, b.Count, b.Median, ba.MedianPGV(mw, rmid, 760), cb.MedianPGV(mw, rmid, 760))
	}
}

func maxRow(pgv []float64, nx, j int) float64 {
	var m float64
	for i := 0; i < nx; i++ {
		if v := pgv[j*nx+i]; v > m {
			m = v
		}
	}
	return m
}

func sustained() {
	header("Sustained performance (§V.B)")
	v72, _ := perfmodel.VersionByName("7.2")
	m8 := perfmodel.M8Job(v72)
	fmt.Printf("M8 production (24h, 436e9 cells, 223,074 cores): %.1f Tflop/s (paper: 220)\n",
		perfmodel.SustainedTflops(m8))
	fmt.Printf("Blue Waters benchmark (1.4e12 points, 2000 steps): %.1f Tflop/s (paper: 260)\n",
		perfmodel.SustainedTflops(perfmodel.BenchmarkJob()))
	fmt.Printf("M8 parallel efficiency on 223,074 cores: %.3f (paper: 0.986)\n",
		perfmodel.Efficiency(m8))
}
