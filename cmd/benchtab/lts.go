package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
)

// ltsBasinRock is the benchmark medium: hard rock for x < split metres,
// a soft sedimentary basin beyond. The ~4x Vp contrast pins the rock
// ranks at the base step while the basin ranks are stable at 4x the step,
// which is exactly the regime multi-rate LTS targets (§ the paper's
// motivation: minimum-Vs basins force the global step of a uniform-rate
// run).
type ltsBasinRock struct{ split float64 }

func (m ltsBasinRock) Query(x, _, _ float64) cvm.Material {
	if x < m.split {
		return cvm.Material{Vp: 5200, Vs: 3000, Rho: 2700}
	}
	return cvm.Material{Vp: 1250, Vs: 720, Rho: 1900}
}

// ltsPlan is the analytic rate-plan accounting on the timing scenario:
// per-rank rates, naive (block) vs work-balanced cut offsets along x, and
// the amortized work factor sum(width/rate)/NX — the fraction of classic
// per-base-step cell updates the multi-rate schedule performs.
type ltsPlan struct {
	Grid         string  `json:"grid"`
	SplitPlane   int     `json:"split_plane"`
	Rates        []int   `json:"rates"`
	NaiveCuts    []int   `json:"naive_cuts"`
	BalancedCuts []int   `json:"balanced_cuts"`
	WorkFactor   float64 `json:"work_factor"`
	// MaxRankCost is max(width/rate) per base step, the load-balance
	// objective of the cut DP, for each cut layout.
	NaiveMaxCost    int `json:"naive_max_cost"`
	BalancedMaxCost int `json:"balanced_max_cost"`
}

// ltsTiming is the measured head-to-head: classic global-dt stepping vs
// the multi-rate schedule on the same scenario, stepping loop only,
// minimum over interleaved repetitions.
type ltsTiming struct {
	Grid           string  `json:"grid"`
	Topo           string  `json:"topo"`
	Steps          int     `json:"steps"`
	Reps           int     `json:"reps"`
	ClassicStepSec float64 `json:"classic_step_sec"`
	LTSStepSec     float64 `json:"lts_step_sec"`
	Speedup        float64 `json:"speedup"`
}

// ltsAccuracyRow is one receiver of one mixed-rate accuracy run: the
// seismogram relative L2 error and PGV relative error of the LTS run
// against the classic global-dt reference, with the enforced tolerance.
type ltsAccuracyRow struct {
	MaxRateRatio int     `json:"max_rate_ratio"`
	Receiver     string  `json:"receiver"`
	SeisRelL2    float64 `json:"seis_rel_l2"`
	SeisTol      float64 `json:"seis_tol"`
	PGVRelErr    float64 `json:"pgv_rel_err"`
	PGVTol       float64 `json:"pgv_tol"`
}

type ltsReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Warning     string `json:"warning,omitempty"`
	// Rate1Identity: a uniform-rate medium under the LTS engine must be
	// bit-identical to classic stepping (checksums compared, enforced).
	Rate1ClassicChecksum string `json:"rate1_classic_checksum"`
	Rate1LTSChecksum     string `json:"rate1_lts_checksum"`
	Rate1Identical       bool   `json:"rate1_identical"`
	// AccuracyNote documents why the error bounds are what they are.
	AccuracyNote string           `json:"accuracy_note"`
	Accuracy     []ltsAccuracyRow `json:"accuracy"`
	Plan         ltsPlan          `json:"plan"`
	Timing       ltsTiming        `json:"timing"`
}

// ltsTimingOptions is the basin-over-rock timing scenario with the full
// production feature surface (sponge, free surface, attenuation,
// receivers, PGV), so the measured speedup prices everything the
// multi-rate schedule must carry, not just the stencil kernels.
func ltsTimingOptions(g grid.Dims, steps int, topo mpi.Cart, lts bool) (cvm.Querier, solver.Options) {
	q := ltsBasinRock{split: float64(g.NX/2) * 100}
	src := source.PointSource{
		GI: g.NX / 4, GJ: g.NY / 2, GK: g.NZ / 2, M0: 1e15,
		Tensor: source.Explosion, STF: source.GaussianPulse(0.06, 0.02),
	}
	return q, solver.Options{
		Global: g, H: 100, Steps: steps, Topo: topo,
		Comm: solver.Asynchronous, Threads: 1,
		Variant: fd.Fused, Blocking: fd.DefaultBlocking,
		ABC: solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: true,
		Sources:   []source.SampledSource{src.Sample(0.002, 200)},
		Receivers: [][3]int{{g.NX / 4, g.NY / 2, 4}, {3 * g.NX / 4, g.NY / 2, 4}},
		TrackPGV:  true,
		LTS:       solver.LTSOptions{Enabled: lts, MaxRateRatio: 4, WorkBalance: true},
	}
}

// ltsTimedRun executes one distributed run through the Stepper API so the
// timer brackets only the stepping loop (CVM sampling, medium and rate
// planning setup are excluded), and returns the per-base-step wall time
// plus the rate plan actually assigned.
func ltsTimedRun(q cvm.Querier, opt solver.Options) (float64, []int, []int) {
	opt, err := solver.PlanLTS(q, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
		os.Exit(1)
	}
	dc, opt, err := solver.Prepare(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
		os.Exit(1)
	}
	var sec float64
	var rates []int
	w := mpi.NewWorld(opt.Topo.Size())
	w.Run(func(c *mpi.Comm) {
		st, err := solver.NewStepper(c, q, dc, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		t0 := time.Now()
		for !st.Done() {
			st.Step()
		}
		if c.Rank() == 0 {
			sec = time.Since(t0).Seconds()
			rates = st.LTSRates()
		}
		if _, err := st.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
			os.Exit(1)
		}
	})
	return sec / float64(opt.Steps), rates, dc.Cuts(0)
}

// ltsAccuracyOptions is the long-horizon accuracy scenario: small enough
// that 192 base steps let the wavefront cross the rate boundary and
// register at all three receivers (rock side, on the boundary, basin
// side). Mirrors the solver acceptance test TestLTSMixedRateAccuracy.
func ltsAccuracyOptions(steps, ratio int, lts bool) (cvm.Querier, solver.Options) {
	g := grid.Dims{NX: 32, NY: 16, NZ: 16}
	q := ltsBasinRock{split: 16 * 100}
	src := source.PointSource{
		GI: 8, GJ: 8, GK: 8, M0: 1e15,
		Tensor: source.Explosion, STF: source.GaussianPulse(0.06, 0.015),
	}
	return q, solver.Options{
		Global: g, H: 100, Steps: steps, Topo: mpi.NewCart(2, 1, 1),
		Comm: solver.Asynchronous, Threads: 1,
		Variant: fd.Precomp,
		ABC:     solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true,
		Sources:     []source.SampledSource{src.Sample(0.002, 200)},
		Receivers:   [][3]int{{8, 8, 4}, {16, 8, 4}, {24, 8, 4}},
		TrackPGV:    true,
		LTS:         solver.LTSOptions{Enabled: lts, MaxRateRatio: ratio, WorkBalance: lts},
	}
}

// ltsRelL2 is ||a-b|| / ||b|| over a three-component seismogram.
func ltsRelL2(a, b [][3]float32) float64 {
	var num, den float64
	for n := range b {
		for c := 0; c < 3; c++ {
			d := float64(a[n][c]) - float64(b[n][c])
			num += d * d
			den += float64(b[n][c]) * float64(b[n][c])
		}
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// ltsAxisCosts returns per-rank base-step costs width/rate for cut
// offsets along x, given the per-plane rate vector.
func ltsAxisCosts(cuts []int, planeRates []int) []int {
	costs := make([]int, len(cuts)-1)
	for r := 0; r+1 < len(cuts); r++ {
		minRate := planeRates[cuts[r]]
		for p := cuts[r]; p < cuts[r+1]; p++ {
			if planeRates[p] < minRate {
				minRate = planeRates[p]
			}
		}
		costs[r] = (cuts[r+1] - cuts[r]) / minRate
	}
	return costs
}

func ltsMaxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ltsExp benchmarks multi-rate local time stepping: the rate plan and
// work-balanced cuts on a basin-over-rock scenario, the measured
// wall-clock speedup of the multi-rate schedule against classic global-dt
// stepping (the >= 1.3x acceptance gate, enforced in full mode), the
// rate-1 bit-identity guarantee, and the mixed-rate accuracy against the
// global-dt reference with enforced tolerances. Writes BENCH_7.json (or
// outPath).
func ltsExp(outPath string, short bool) {
	header("Multi-rate local time stepping: basin-over-rock")
	rep := ltsReport{
		GeneratedBy: "cmd/benchtab -exp lts",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: rank goroutines serialize, so wall time tracks aggregate " +
			"work; the classic-vs-LTS comparison is fair (both serialize alike) and directly " +
			"measures the multi-rate work reduction"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}

	// Rate-1 identity: a depth-uniform medium (SoCal varies only with z,
	// and the topology splits x/y) plans rate 1 everywhere, and the LTS
	// engine must then be bit-identical to classic stepping.
	idGrid := grid.Dims{NX: 32, NY: 32, NZ: 24}
	idSteps := 16
	runChecksum := func(lts bool) string {
		q := cvm.SoCal(float64(idGrid.NX)*100, float64(idGrid.NY)*100, float64(idGrid.NZ)*100, 500)
		src := source.PointSource{
			GI: 16, GJ: 16, GK: 12, M0: 1e15,
			Tensor: source.Explosion, STF: source.GaussianPulse(0.06, 0.02),
		}
		opt := solver.Options{
			Global: idGrid, H: 100, Steps: idSteps, Topo: mpi.NewCart(2, 2, 1),
			Comm: solver.Asynchronous, Threads: 1,
			Variant: fd.Fused, Blocking: fd.DefaultBlocking,
			ABC: solver.SpongeABC, SpongeWidth: 4,
			FreeSurface: true, Attenuation: true,
			Sources:   []source.SampledSource{src.Sample(0.002, 200)},
			Receivers: [][3]int{{16, 16, 0}, {4, 4, 0}},
			TrackPGV:  true,
			LTS:       solver.LTSOptions{Enabled: lts, MaxRateRatio: 4, WorkBalance: lts},
		}
		res, err := solver.Run(q, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
			os.Exit(1)
		}
		return kernelChecksum(res)
	}
	rep.Rate1ClassicChecksum = runChecksum(false)
	rep.Rate1LTSChecksum = runChecksum(true)
	rep.Rate1Identical = rep.Rate1ClassicChecksum == rep.Rate1LTSChecksum
	fmt.Printf("\nrate-1 LTS vs classic bit-identical: %v\n", rep.Rate1Identical)
	if !rep.Rate1Identical {
		fmt.Fprintf(os.Stderr, "benchtab: lts: rate-1 LTS output diverged from classic (%s != %s)\n",
			rep.Rate1LTSChecksum, rep.Rate1ClassicChecksum)
		os.Exit(1)
	}

	// Mixed-rate accuracy against the classic global-dt reference. The
	// bounds are calibrated against pure time refinement: running the
	// whole (uniform) soft medium at 2x/4x the step — no LTS, no rate
	// boundary — already incurs comparable relative L2 error on these
	// receivers, so the seam interpolation adds little beyond the coarse
	// cluster's inherent larger-step discretization error. See
	// EXPERIMENTS.md for the attribution data.
	rep.AccuracyNote = "tolerances match the solver acceptance test TestLTSMixedRateAccuracy; " +
		"errors are dominated by the coarse cluster's inherent 2x/4x-step discretization error " +
		"(pure time-refinement control runs show comparable relL2 without any rate boundary)"
	accSteps := 192
	ratios := []struct {
		ratio   int
		seisTol float64
		pgvTol  float64
	}{
		{2, 0.25, 0.05},
		{4, 0.50, 0.08},
	}
	if short {
		ratios = ratios[1:] // the coarsest seam is the stress case
	}
	recNames := []string{"rock(8,8,4)", "boundary(16,8,4)", "basin(24,8,4)"}
	fmt.Printf("\n%-8s %-18s %12s %9s %12s %9s %6s\n",
		"ratio", "receiver", "seis_relL2", "tol", "pgv_relerr", "tol", "ok")
	accPass := true
	for _, rc := range ratios {
		q, refOpt := ltsAccuracyOptions(accSteps, rc.ratio, false)
		ref, err := solver.Run(q, refOpt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
			os.Exit(1)
		}
		_, ltsOpt := ltsAccuracyOptions(accSteps, rc.ratio, true)
		res, err := solver.Run(q, ltsOpt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
			os.Exit(1)
		}
		for r := range ref.Seismograms {
			row := ltsAccuracyRow{
				MaxRateRatio: rc.ratio,
				Receiver:     recNames[r],
				SeisRelL2:    ltsRelL2(res.Seismograms[r], ref.Seismograms[r]),
				SeisTol:      rc.seisTol,
				PGVTol:       rc.pgvTol,
			}
			if ref.PGVH[r] != 0 {
				row.PGVRelErr = math.Abs(res.PGVH[r]-ref.PGVH[r]) / ref.PGVH[r]
			}
			ok := row.SeisRelL2 <= row.SeisTol && row.PGVRelErr <= row.PGVTol
			accPass = accPass && ok
			rep.Accuracy = append(rep.Accuracy, row)
			fmt.Printf("%-8d %-18s %12.4f %9.2f %12.4f %9.2f %6v\n",
				rc.ratio, row.Receiver, row.SeisRelL2, row.SeisTol, row.PGVRelErr, row.PGVTol, ok)
		}
	}
	if !accPass {
		fmt.Fprintf(os.Stderr, "benchtab: lts: mixed-rate accuracy outside documented tolerances\n")
		os.Exit(1)
	}

	// Timing: basin-over-rock, 4 x-ranks, rate-4 basin. Interleaved
	// min-of-reps so allocator and scheduler drift hits both schedules
	// alike.
	tg := grid.Dims{NX: 96, NY: 64, NZ: 64}
	topo := mpi.NewCart(4, 1, 1)
	steps, reps := 32, 3
	if short {
		tg = grid.Dims{NX: 48, NY: 24, NZ: 24}
		steps, reps = 16, 1
	}
	classicBest, ltsBest := math.Inf(1), math.Inf(1)
	var rates, balCuts, naiveCuts []int
	for r := 0; r < reps; r++ {
		q, opt := ltsTimingOptions(tg, steps, topo, false)
		sec, _, cuts := ltsTimedRun(q, opt)
		if sec < classicBest {
			classicBest = sec
		}
		naiveCuts = cuts
		q, opt = ltsTimingOptions(tg, steps, topo, true)
		sec, rs, cuts := ltsTimedRun(q, opt)
		if sec < ltsBest {
			ltsBest = sec
		}
		rates, balCuts = rs, cuts
	}

	// Analytic plan accounting on the x axis (the only decomposed axis).
	split := tg.NX / 2
	planeRates := make([]int, tg.NX)
	for p := range planeRates {
		if p < split {
			planeRates[p] = 1
		} else {
			planeRates[p] = ltsMaxInt(rates)
		}
	}
	work := 0
	for _, c := range ltsAxisCosts(balCuts, planeRates) {
		work += c
	}
	rep.Plan = ltsPlan{
		Grid:            fmt.Sprintf("%dx%dx%d", tg.NX, tg.NY, tg.NZ),
		SplitPlane:      split,
		Rates:           rates,
		NaiveCuts:       naiveCuts,
		BalancedCuts:    balCuts,
		WorkFactor:      float64(work) / float64(tg.NX),
		NaiveMaxCost:    ltsMaxInt(ltsAxisCosts(naiveCuts, planeRates)),
		BalancedMaxCost: ltsMaxInt(ltsAxisCosts(balCuts, planeRates)),
	}
	fmt.Printf("\nrates %v  naive cuts %v (max cost %d)  balanced cuts %v (max cost %d)  work factor %.3f\n",
		rates, naiveCuts, rep.Plan.NaiveMaxCost, balCuts, rep.Plan.BalancedMaxCost, rep.Plan.WorkFactor)

	rep.Timing = ltsTiming{
		Grid:           rep.Plan.Grid,
		Topo:           fmt.Sprintf("%dx%dx%d", topo.PX, topo.PY, topo.PZ),
		Steps:          steps,
		Reps:           reps,
		ClassicStepSec: classicBest,
		LTSStepSec:     ltsBest,
		Speedup:        classicBest / ltsBest,
	}
	fmt.Printf("\n%-12s %-8s %14s %14s %9s\n", "grid", "topo", "classic_s/step", "lts_s/step", "speedup")
	fmt.Printf("%-12s %-8s %14.5f %14.5f %8.2fx\n",
		rep.Timing.Grid, rep.Timing.Topo, classicBest, ltsBest, rep.Timing.Speedup)
	if !short && rep.Timing.Speedup < 1.3 {
		fmt.Fprintf(os.Stderr, "benchtab: lts: measured speedup %.2fx < 1.3x\n", rep.Timing.Speedup)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: lts: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", outPath)
}
