package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// farmRun is one farm execution (clean baseline or fault storm).
type farmRun struct {
	Label            string     `json:"label"`
	Scenarios        int        `json:"scenarios"`
	Completed        int        `json:"completed"`
	Failed           int        `json:"failed"`
	Attempts         int        `json:"attempts"`
	Retries          int        `json:"retries"`
	WorkerCrashes    int        `json:"worker_crashes"`
	DeadlineMisses   int        `json:"deadline_misses"`
	BreakerTrips     int        `json:"breaker_trips"`
	CorruptRequeued  int        `json:"corrupt_requeued"`
	ChaosInjected    farm.ChaosStats `json:"chaos_injected"`
	PFSFaults        uint64     `json:"pfs_faults"`
	WallSec          float64    `json:"wall_sec"`
	ScenariosPerHour float64    `json:"scenarios_per_hour"`
	Queries          int        `json:"queries"`
	Non200           int        `json:"non_200"`
	DegradedAnswers  int        `json:"degraded_answers"`
	ShedQueries      int        `json:"shed_queries"`
	P99QueryMs       float64    `json:"p99_query_ms"`
	JobPhaseSec      float64    `json:"job_phase_sec"`
	ServePhaseSec    float64    `json:"serve_phase_sec"`
}

type farmReport struct {
	GeneratedBy string  `json:"generated_by"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Grid        string  `json:"grid"`
	Steps       int     `json:"steps"`
	Workers     int     `json:"workers"`
	PilotJobSec float64 `json:"pilot_job_sec"`
	DeadlineSec float64 `json:"deadline_sec"`

	Clean farmRun `json:"clean"`
	Storm farmRun `json:"storm"`

	// The acceptance gates of the robustness story.
	WrongResults      int     `json:"wrong_results"` // storm artifacts differing from clean reference
	ThroughputDropPct float64 `json:"throughput_drop_pct"`
	GateZeroWrong     bool    `json:"gate_zero_wrong_results"`
	// The throughput gate is only enforced at full scale: a -short smoke
	// ensemble is too small to amortize the fixed cost of a single hung
	// job (one deadline of one worker's wall clock), so its drop ratio is
	// reported but not gated.
	ThroughputGateEnforced bool `json:"throughput_gate_enforced"`
	GateThroughput         bool `json:"gate_throughput_drop_le_35pct"`
	GateAvailability       bool `json:"gate_availability_no_errors"`
}

// farmExp runs the ensemble farm twice over the same Latin-hypercube
// ensemble — clean, then under a composed fault storm (worker crashes,
// hung jobs, artifact corruption, PFS faults) with a concurrent query
// load — and gates on the robustness contract: zero wrong results,
// throughput degradation <= 35%, and a front end that never errors.
// Writes BENCH_10.json (or outPath).
func farmExp(outPath string, short bool) {
	header("FARM: fault-tolerant hazard-service ensemble farm under fault storm")
	// The ensemble must be large enough that fixed fault costs (a hung
	// job near the queue tail stalls one worker for a full deadline)
	// amortize below the 35% throughput gate.
	nScen := 96
	workers := 4
	if short {
		nScen = 16
	}
	spec := farm.DefaultSpec()
	rng := farm.DefaultRange()
	scs := farm.LatinHypercube(nScen, 2024, rng)

	// Pilot: one clean job prices the deadline (8x pilot, floor 150ms)
	// and the chaos hang duration (past the deadline).
	pilotFarm := farm.New(farm.Config{Spec: spec, Workers: 1},
		farm.NewStore(pfs.New(pfs.Jaguar()), nil), nil)
	t0 := time.Now()
	pilotFarm.Submit(scs[0])
	pilotFarm.Wait()
	pilotSec := time.Since(t0).Seconds()
	pilotFarm.Close()
	// Price the deadline against *contended* job time: with more workers
	// than CPUs, concurrent jobs serialize and a single job's wall time
	// stretches by up to workers/GOMAXPROCS. A deadline tuned to the solo
	// pilot would then abandon healthy jobs, burning a full deadline of
	// CPU per false positive.
	// 3x the contended job time: loose enough that healthy jobs rarely
	// miss, tight enough that an injected hang wastes at most ~3 job
	// times of one worker's wall clock.
	contention := (workers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	deadline := time.Duration(3 * pilotSec * float64(contention) * float64(time.Second))
	if deadline < 150*time.Millisecond {
		deadline = 150 * time.Millisecond
	}

	rep := farmReport{
		GeneratedBy: "cmd/benchtab -exp farm",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Grid:        fmt.Sprintf("%dx%dx%d", spec.Dims.NX, spec.Dims.NY, spec.Dims.NZ),
		Steps:       spec.Steps,
		Workers:     workers,
		PilotJobSec: pilotSec,
		DeadlineSec: deadline.Seconds(),
	}

	run := func(label string, chaos *farm.ChaosPlan, pfsPlan *pfs.FaultPlan) (farmRun, map[string]uint64) {
		fs := pfs.New(pfs.Jaguar())
		if pfsPlan != nil {
			fs.InjectFaults(*pfsPlan)
		}
		store := farm.NewStore(fs, nil)
		store.Retry.MaxAttempts = 10
		store.Retry.Sleep = func(time.Duration) {}
		rec := telemetry.NewRecorder(0, 0)
		f := farm.New(farm.Config{
			Spec: spec, Workers: workers, MaxAttempts: 10,
			Deadline:  deadline,
			RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond,
			Breaker:   farm.BreakerConfig{Threshold: 5, Cooldown: 20 * time.Millisecond},
			Chaos:     chaos,
			Rec:       rec,
		}, store, farm.NewSurrogate(rng))
		defer f.Close()
		srv := farm.NewServer(f, farm.ServerConfig{MaxConcurrent: 8})

		// Concurrent query load for the availability gate.
		var (
			qwg       sync.WaitGroup
			qmu       sync.Mutex
			latencies []float64
			queries   int
			non200    int
			stop      = make(chan struct{})
		)
		for g := 0; g < 2; g++ {
			qwg.Add(1)
			go func(g int) {
				defer qwg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					sc := scs[(g*11+i)%len(scs)]
					req := httptest.NewRequest("GET", fmt.Sprintf(
						"/hazard?mw=%g&hx=%g&hy=%g&hz=%g&vs=%g",
						sc.Mw, sc.HypoX, sc.HypoY, sc.HypoZ, sc.VsScale), nil)
					w := httptest.NewRecorder()
					tq := time.Now()
					srv.ServeHTTP(w, req)
					lat := time.Since(tq).Seconds() * 1e3
					qmu.Lock()
					queries++
					latencies = append(latencies, lat)
					if w.Code != 200 {
						non200++
					}
					qmu.Unlock()
					time.Sleep(5 * time.Millisecond)
				}
			}(g)
		}

		t1 := time.Now()
		for _, sc := range scs {
			f.Submit(sc)
		}
		f.Wait()
		f.Audit(6)
		wall := time.Since(t1).Seconds()
		close(stop)
		qwg.Wait()

		// Snapshot injector counters before ClearFaults resets them.
		fst := fs.FaultStats()

		// Post-storm integrity sweep (fault injection off for the audit
		// readback itself).
		fs.ClearFaults()
		if bad := store.VerifyAll(); len(bad) != 0 {
			// One more audit round with a clean FS heals stragglers.
			f.Audit(2)
		}

		st := f.Stats()
		_, degraded, shed := srv.ServedCounts()
		jobSec, _ := rec.PhaseTotal(telemetry.Job)
		serveSec, _ := rec.PhaseTotal(telemetry.Serve)
		fr := farmRun{
			Label: label, Scenarios: nScen,
			Completed: st.Completed, Failed: st.Failed,
			Attempts: st.Attempts, Retries: st.Retries,
			WorkerCrashes: st.WorkerCrashes, DeadlineMisses: st.DeadlineMisses,
			BreakerTrips: st.BreakerTrips, CorruptRequeued: st.CorruptRequeued,
			ChaosInjected: st.Chaos,
			PFSFaults: uint64(fst.FailedWrites + fst.ShortWrites + fst.TornWrites +
				fst.FailedReads + fst.MDSTimeouts),
			WallSec:          wall,
			ScenariosPerHour: float64(st.Completed) / wall * 3600,
			Queries:          queries, Non200: non200,
			DegradedAnswers: degraded, ShedQueries: shed,
			P99QueryMs:    percentile(latencies, 0.99),
			JobPhaseSec:   jobSec,
			ServePhaseSec: serveSec,
		}
		sums := map[string]uint64{}
		for _, k := range store.Keys() {
			if c, ok := store.Checksum(k); ok {
				sums[k] = c
			}
		}
		return fr, sums
	}

	clean, cleanSums := run("clean", nil, nil)
	rep.Clean = clean
	// Hangs are the expensive fault class (each one stalls a worker for a
	// full deadline), so their probability is scaled down in -short where
	// the smaller ensemble cannot amortize them.
	hangProb := 0.03
	if short {
		hangProb = 0.02
	}
	storm, stormSums := run("fault-storm",
		&farm.ChaosPlan{
			Seed: 303, CrashProb: 0.08, HangProb: hangProb,
			HangDur: deadline + deadline/2, CorruptProb: 0.06,
			MaxFaultsPerJob: 2,
		},
		&pfs.FaultPlan{
			Seed: 404, WriteFailProb: 0.08, ShortWriteProb: 0.04,
			TornWriteProb: 0.04, ReadFailProb: 0.02, MaxConsecutive: 2,
		})
	rep.Storm = storm

	// Gate 1: zero wrong results — every storm artifact byte-matches the
	// clean run's artifact for the same scenario (solver is deterministic,
	// so any divergence is a serving of corrupted/incomplete data).
	for k, c := range cleanSums {
		if sc, ok := stormSums[k]; !ok || sc != c {
			rep.WrongResults++
		}
	}
	rep.GateZeroWrong = rep.WrongResults == 0 &&
		storm.Completed == nScen && len(stormSums) == len(cleanSums)
	// Gate 2: throughput degradation <= 35% (full scale only).
	rep.ThroughputDropPct = 100 * (1 - storm.ScenariosPerHour/clean.ScenariosPerHour)
	rep.ThroughputGateEnforced = !short
	rep.GateThroughput = rep.ThroughputDropPct <= 35 || !rep.ThroughputGateEnforced
	// Gate 3: availability — no query errored in either run.
	rep.GateAvailability = clean.Non200 == 0 && storm.Non200 == 0 &&
		clean.Queries > 0 && storm.Queries > 0

	for _, r := range []farmRun{clean, storm} {
		fmt.Printf("%-12s %3d/%3d done  %5.1f scen/h  wall %6.2fs  retries %3d  crashes %2d  deadline %2d  corrupt-requeue %2d  queries %4d (%d non-200, %d degraded, %d shed)  p99 %.2fms\n",
			r.Label, r.Completed, r.Scenarios, r.ScenariosPerHour, r.WallSec,
			r.Retries, r.WorkerCrashes, r.DeadlineMisses, r.CorruptRequeued,
			r.Queries, r.Non200, r.DegradedAnswers, r.ShedQueries, r.P99QueryMs)
	}
	tpNote := fmt.Sprintf("<=35%%: %v", rep.GateThroughput)
	if !rep.ThroughputGateEnforced {
		tpNote = "gate not enforced in -short"
	}
	fmt.Printf("gates: zero-wrong=%v (diffs %d)  throughput-drop %.1f%% (%s)  availability=%v\n",
		rep.GateZeroWrong, rep.WrongResults, rep.ThroughputDropPct,
		tpNote, rep.GateAvailability)

	writeJSONReport(outPath, rep)
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort; small n
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func writeJSONReport(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s\n", path)
}
