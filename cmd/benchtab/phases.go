package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"

	"repro/internal/checkpoint"
	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// phaseTerm is one Eq. 7 term of one comm-model run: the telemetry-measured
// per-rank seconds per step next to the model prediction.
type phaseTerm struct {
	Term         string  `json:"term"` // comp | comm | sync | output
	MeasuredSec  float64 `json:"measured_sec_per_step"`
	PredictedSec float64 `json:"predicted_sec_per_step"`
	RelError     float64 `json:"rel_error"`
}

// phaseModelRun is the full measured-vs-predicted decomposition of one comm
// model, plus the raw per-phase telemetry breakdown behind it.
type phaseModelRun struct {
	Model            string                 `json:"comm_model"`
	Topo             string                 `json:"topo"`
	Subgrid          string                 `json:"subgrid"` // per-rank dims
	Ranks            int                    `json:"ranks"`
	Steps            int                    `json:"steps"`
	MsgsPerRankStep  float64                `json:"msgs_per_rank_step"`
	BytesPerRankStep float64                `json:"bytes_per_rank_step"`
	Terms            []phaseTerm            `json:"terms"`
	MeasuredStepSec  float64                `json:"measured_step_sec"`
	PredictedStepSec float64                `json:"predicted_step_sec"`
	StepRelError     float64                `json:"step_rel_error"`
	Breakdown        []telemetry.PhaseStats `json:"phase_breakdown"`
}

// phaseCalibration is the serial reference used to predict the per-rank
// compute and output terms (the Eq. 8 numerator: T(N,1) has no comm).
type phaseCalibration struct {
	Global        string  `json:"global"`
	Steps         int     `json:"steps"`
	CompSecStep   float64 `json:"comp_sec_per_step"`
	OutputSecStep float64 `json:"output_sec_per_step"`
}

// phaseFit records the alpha/beta recovery from the telemetry comm samples.
type phaseFit struct {
	AlphaSec       float64 `json:"alpha_sec_per_msg"`
	BetaSecPerByte float64 `json:"beta_sec_per_byte"`
	Samples        int     `json:"samples"`
}

// phasePoolRun reports the worker-pool queue-wait/execute split of a hybrid
// (Threads > 1) run — measured only; Eq. 7 has no term for it.
type phasePoolRun struct {
	Threads          int     `json:"threads"`
	QueueWaitSecStep float64 `json:"queue_wait_sec_per_step"`
	ExecuteSecStep   float64 `json:"execute_sec_per_step"`
	QueueWaitSpans   int64   `json:"queue_wait_spans"`
	ExecuteSpans     int64   `json:"execute_spans"`
}

// phaseIODemo reports the IO/Checkpoint span attribution over the simulated
// parallel file system (measured only).
type phaseIODemo struct {
	IOSec          float64 `json:"io_sec"`
	IOSpans        int64   `json:"io_spans"`
	CheckpointSec  float64 `json:"checkpoint_sec"`
	CkptSpans      int64   `json:"checkpoint_spans"`
	BytesPerRank   int     `json:"bytes_per_rank"`
	RoundTripMatch bool    `json:"round_trip_match"`
}

type phaseReport struct {
	GeneratedBy string                    `json:"generated_by"`
	GOOS        string                    `json:"goos"`
	GOARCH      string                    `json:"goarch"`
	GOMAXPROCS  int                       `json:"gomaxprocs"`
	NumCPU      int                       `json:"num_cpu"`
	Warning     string                    `json:"warning,omitempty"`
	Calibration phaseCalibration          `json:"calibration"`
	Fit         *phaseFit                 `json:"fit,omitempty"`
	Runs        []phaseModelRun           `json:"runs"`
	Pool        []phasePoolRun            `json:"pool"`
	IO          phaseIODemo               `json:"io"`
	Neighbors   []telemetry.NeighborStats `json:"neighbors,omitempty"`
}

// compPhases groups the telemetry phases that make up Eq. 7's Tcomp.
var compPhases = []telemetry.Phase{
	telemetry.Velocity, telemetry.Stress, telemetry.Attenuation, telemetry.Boundary,
}

// commPhases groups the phases that make up the per-message Tcomm.
var commPhases = []telemetry.Phase{
	telemetry.Pack, telemetry.Send, telemetry.Recv, telemetry.Unpack,
}

// phasesRun executes one telemetry-instrumented solver run and returns the
// aggregated report. The scenario mirrors the solver test fixture: sponge
// ABC, free surface, attenuation, explosion source, receivers, PGV maps —
// every instrumented phase is exercised.
func phasesRun(topo mpi.Cart, sub grid.Dims, model solver.CommModel, threads, steps int, coalesce bool) *telemetry.Report {
	g := grid.Dims{NX: sub.NX * topo.PX, NY: sub.NY * topo.PY, NZ: sub.NZ * topo.PZ}
	q := cvm.Homogeneous(cvm.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	src := source.PointSource{
		GI: g.NX / 2, GJ: g.NY / 2, GK: g.NZ / 2, M0: 1e15,
		Tensor: source.Explosion, STF: source.GaussianPulse(0.06, 0.02),
	}
	res, err := solver.Run(q, solver.Options{
		Global: g, H: 100, Steps: steps, Topo: topo,
		Comm: model, Threads: threads, CoalesceHalo: coalesce,
		Variant: fd.Blocked, Blocking: fd.DefaultBlocking,
		ABC: solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: true,
		Sources:   []source.SampledSource{src.Sample(0.002, 200)},
		Receivers: [][3]int{{g.NX / 2, g.NY / 2, 0}, {2, 2, 0}},
		TrackPGV:  true,
		Telemetry: &telemetry.Options{},
	})
	if err != nil {
		panic(err)
	}
	return res.Telemetry
}

// msgTraffic returns the per-rank per-step message count and byte volume of
// a run from its aggregated neighbor counters.
func msgTraffic(rep *telemetry.Report, ranks, steps int) (msgs, bytes float64) {
	var sentMsgs, sentFloats int64
	for _, nb := range rep.Neighbors {
		sentMsgs += nb.SentMsgs
		sentFloats += nb.SentFloats
	}
	norm := float64(ranks * steps)
	return float64(sentMsgs) / norm, float64(sentFloats) * 4 / norm
}

// phases cross-validates the telemetry subsystem against the Eq. 7/8
// performance model: a serial calibration run prices Tcomp and Toutput,
// alpha/beta are fitted from telemetry comm samples (perfmodel.FitAlphaBeta
// over a layout/topology/subgrid sweep), and then each comm model's
// measured per-phase breakdown is compared term by term against the model
// prediction. Writes BENCH_3.json (or outPath).
func phases(outPath string, short bool) {
	header("Phases: telemetry breakdown vs Eq. 7/8 prediction")
	rep := phaseReport{
		GeneratedBy: "cmd/benchtab -exp phases",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: ranks share one OS thread; phase timings measure " +
			"serialized goroutine execution, not hardware parallelism"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}

	mainSteps, fitSteps, calSteps := 120, 60, 120
	if short {
		mainSteps, fitSteps, calSteps = 40, 24, 40
	}
	topo := mpi.NewCart(2, 2, 1)
	sub := grid.Dims{NX: 16, NY: 16, NZ: 16}

	// --- Calibration: serial run of the same global grid. Per-rank Tcomp
	// and Toutput are predicted as the serial totals divided by the rank
	// count (Eq. 8's numerator: T(N,1) is pure compute + output). Cache
	// effects of the smaller per-rank working set (§V.A superlinearity)
	// land in the relative error on purpose.
	calRep := phasesRun(mpi.NewCart(1, 1, 1), grid.Dims{
		NX: sub.NX * topo.PX, NY: sub.NY * topo.PY, NZ: sub.NZ * topo.PZ,
	}, solver.Asynchronous, 1, calSteps, false)
	cal := phaseCalibration{
		Global:        fmt.Sprintf("%dx%dx%d", sub.NX*topo.PX, sub.NY*topo.PY, sub.NZ*topo.PZ),
		Steps:         calSteps,
		CompSecStep:   calRep.MeanStepSec(compPhases...),
		OutputSecStep: calRep.MeanStepSec(telemetry.Output),
	}
	rep.Calibration = cal
	fmt.Printf("\ncalibration (%s serial, %d steps): comp %.3g s/step, output %.3g s/step\n",
		cal.Global, cal.Steps, cal.CompSecStep, cal.OutputSecStep)

	// --- Fit alpha/beta from telemetry comm samples. Coalescing varies the
	// message count at fixed byte volume and the subgrid sweep varies bytes
	// at fixed count, so the two terms separate (same decorrelation
	// argument as the halo experiment, but here the counts and the comm
	// seconds both come from the telemetry subsystem under test).
	var samples []perfmodel.CommSample
	for _, ft := range []mpi.Cart{mpi.NewCart(2, 1, 1), mpi.NewCart(2, 2, 1)} {
		for _, fs := range []grid.Dims{{NX: 12, NY: 12, NZ: 12}, {NX: 16, NY: 16, NZ: 16}} {
			for _, coal := range []bool{false, true} {
				r := phasesRun(ft, fs, solver.Asynchronous, 1, fitSteps, coal)
				msgs, bytes := msgTraffic(r, ft.Size(), fitSteps)
				samples = append(samples, perfmodel.CommSample{
					Msgs:  int(msgs + 0.5),
					Bytes: bytes,
					Sec:   r.MeanStepSec(commPhases...),
				})
			}
		}
	}
	alpha, beta, ok := perfmodel.FitAlphaBeta(samples)
	if !ok {
		fmt.Println("\nalpha/beta fit failed: samples cannot separate the terms")
	} else {
		rep.Fit = &phaseFit{AlphaSec: alpha, BetaSecPerByte: beta, Samples: len(samples)}
		fmt.Printf("fitted alpha = %.3g s/msg, beta = %.3g s/B over %d telemetry samples\n",
			alpha, beta, len(samples))
	}

	// --- Measured vs predicted, per comm model.
	models := []struct {
		name  string
		model solver.CommModel
	}{
		{"sync", solver.Synchronous},
		{"async", solver.Asynchronous},
		{"async-reduced", solver.AsyncReduced},
		{"overlap", solver.AsyncOverlap},
	}
	relErr := func(pred, meas float64) float64 {
		return abs(pred-meas) / math.Max(meas, 1e-12)
	}
	fmt.Printf("\n%-14s %-8s %14s %14s %10s\n", "model", "term", "measured_s", "predicted_s", "rel_err")
	for _, m := range models {
		r := phasesRun(topo, sub, m.model, 1, mainSteps, false)
		msgs, bytes := msgTraffic(r, topo.Size(), mainSteps)
		run := phaseModelRun{
			Model:   m.name,
			Topo:    fmt.Sprintf("%dx%dx%d", topo.PX, topo.PY, topo.PZ),
			Subgrid: sub.String(), Ranks: topo.Size(), Steps: mainSteps,
			MsgsPerRankStep: msgs, BytesPerRankStep: bytes,
			Breakdown: r.Phases,
		}
		// Tsync: the synchronous model barriers after each phase (the
		// 4*alpha*log2(p+1) term of Eq. 7, NUMA factor 1 in-process); the
		// async models run barrier-free, so the prediction is zero.
		predSync := 0.0
		if m.model == solver.Synchronous {
			predSync = 4 * alpha * math.Log2(float64(topo.Size())+1)
		}
		terms := []phaseTerm{
			{Term: "comp",
				MeasuredSec:  r.MeanStepSec(compPhases...),
				PredictedSec: cal.CompSecStep / float64(topo.Size())},
			{Term: "comm",
				MeasuredSec:  r.MeanStepSec(commPhases...),
				PredictedSec: perfmodel.MessageCost(alpha, beta, int(msgs+0.5), bytes)},
			{Term: "sync",
				MeasuredSec:  r.MeanStepSec(telemetry.Sync),
				PredictedSec: predSync},
			{Term: "output",
				MeasuredSec:  r.MeanStepSec(telemetry.Output),
				PredictedSec: cal.OutputSecStep / float64(topo.Size())},
		}
		for i := range terms {
			t := &terms[i]
			t.RelError = relErr(t.PredictedSec, t.MeasuredSec)
			run.MeasuredStepSec += t.MeasuredSec
			run.PredictedStepSec += t.PredictedSec
			fmt.Printf("%-14s %-8s %14.3g %14.3g %9.1f%%\n",
				m.name, t.Term, t.MeasuredSec, t.PredictedSec, 100*t.RelError)
		}
		run.Terms = terms
		run.StepRelError = relErr(run.PredictedStepSec, run.MeasuredStepSec)
		rep.Runs = append(rep.Runs, run)
		fmt.Printf("%-14s %-8s %14.3g %14.3g %9.1f%%\n",
			m.name, "step", run.MeasuredStepSec, run.PredictedStepSec, 100*run.StepRelError)
		if m.model == solver.Asynchronous {
			rep.Neighbors = r.Neighbors
		}
	}

	// --- Worker-pool split (hybrid mode, §IV.D): queue wait vs execute per
	// step, measured only — Eq. 7 has no pool term; the split shows where
	// hybrid time goes when subdomains shrink.
	fmt.Printf("\n%-8s %18s %18s\n", "threads", "queue-wait_s/step", "execute_s/step")
	for _, threads := range []int{1, 4} {
		r := phasesRun(topo, sub, solver.Asynchronous, threads, mainSteps/2, false)
		qw, ex := r.Stat(telemetry.QueueWait), r.Stat(telemetry.Execute)
		rep.Pool = append(rep.Pool, phasePoolRun{
			Threads:          threads,
			QueueWaitSecStep: qw.MeanSec, ExecuteSecStep: ex.MeanSec,
			QueueWaitSpans: qw.Spans, ExecuteSpans: ex.Spans,
		})
		fmt.Printf("%-8d %18.3g %18.3g\n", threads, qw.MeanSec, ex.MeanSec)
	}

	// --- IO/Checkpoint attribution over the simulated parallel file
	// system: one rank's state round-trips through checkpoint.Save/Load and
	// an indexed view write/read, each span landing in its phase.
	rep.IO = phasesIODemo()
	fmt.Printf("\nio demo: io %.3g s over %d spans, checkpoint %.3g s over %d spans, round-trip match %v\n",
		rep.IO.IOSec, rep.IO.IOSpans, rep.IO.CheckpointSec, rep.IO.CkptSpans, rep.IO.RoundTripMatch)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: write %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%d model runs)\n", outPath, len(rep.Runs))
}

// phasesIODemo exercises the IO and Checkpoint telemetry phases against the
// simulated PFS and verifies the data round-trips intact.
func phasesIODemo() phaseIODemo {
	rec := telemetry.NewRecorder(0, 16)
	fsys := pfs.New(pfs.Jaguar())
	d := grid.Dims{NX: 16, NY: 16, NZ: 16}

	st := fd.NewState(d)
	vx := st.VX.Data()
	for i := range vx {
		vx[i] = float32(i%97) * 1e-3
	}
	_, saveErr := checkpoint.Save(fsys, "ckpt", 0, 10, st, nil, rec)
	st2 := fd.NewState(d)
	err := checkpoint.Load(fsys, "ckpt", 0, 10, st2, nil, rec)
	match := saveErr == nil && err == nil
	if match {
		vx2 := st2.VX.Data()
		for i := range vx {
			if vx[i] != vx2[i] {
				match = false
				break
			}
		}
	}

	segs := mpiio.BlockSegments(d, 0, d.NX, 0, d.NY, 0, 1, 4)
	payload := make([]byte, mpiio.TotalLen(segs))
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := mpiio.WriteIndexed(fsys, "surface.bin", segs, payload, rec); err != nil {
		match = false
	}
	back, err := mpiio.ReadIndexed(fsys, "surface.bin", segs, rec)
	if err != nil || len(back) != len(payload) {
		match = false
	} else {
		for i := range payload {
			if payload[i] != back[i] {
				match = false
				break
			}
		}
	}

	ioSec, ioN := rec.PhaseTotal(telemetry.IO)
	ckSec, ckN := rec.PhaseTotal(telemetry.Checkpoint)
	return phaseIODemo{
		IOSec: ioSec, IOSpans: ioN,
		CheckpointSec: ckSec, CkptSpans: ckN,
		BytesPerRank:   len(payload),
		RoundTripMatch: match,
	}
}
