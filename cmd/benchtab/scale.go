package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core/solver"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// scaleWorldRow is one rank count of the runtime-scaling sweep: world
// construction cost, steady-state memory, barrier latency (combining
// tree vs the legacy centralized convoy), Allreduce latency, and a ring
// halo exchange throughput.
type scaleWorldRow struct {
	Ranks        int     `json:"ranks"`
	NewWorldSec  float64 `json:"new_world_sec"`
	PerRankBytes float64 `json:"per_rank_bytes"`
	// Per-round wall time of 1 barrier across all ranks. On one core any
	// barrier is Omega(P) aggregate work, so the honest per-rank view is
	// the round divided by P. The sweep gates the tree's per-rank cost
	// staying bounded across a 160x rank growth (sub-linear latency). It
	// does NOT gate tree-faster-than-convoy: at GOMAXPROCS=1 the
	// convoy's single mutex is never contended and its one broadcast
	// wakes all waiters in a single runtime operation, so the serialized
	// constant can favor it — the tree's payoff is its 2*ceil(log2 P)
	// critical path (vs the convoy's 2P serialized hops) and the absence
	// of a shared hot mutex, which need real parallel cores to show up
	// in wall time. Both are reported for the comparison.
	TreeBarrierRoundSec   float64 `json:"tree_barrier_round_sec"`
	ConvoyBarrierRoundSec float64 `json:"convoy_barrier_round_sec"`
	TreePerRankNs         float64 `json:"tree_per_rank_ns"`
	ConvoyPerRankNs       float64 `json:"convoy_per_rank_ns"`
	// Analytic critical-path hops: 2*ceil(log2 P) for the combine+release
	// tree, 2P for the serialized convoy chain.
	TreeDepthHops   int     `json:"tree_depth_hops"`
	ConvoyDepthHops int     `json:"convoy_depth_hops"`
	AllreduceSec    float64 `json:"allreduce_sec"`
	HaloStepsPerSec float64 `json:"halo_steps_per_sec"`
}

// scaleHybrid is the hybrid model-execution section: measured constants,
// the extrapolated weak/strong curves, and the P=64 projection-vs-real
// parity check that anchors them.
type scaleHybrid struct {
	Constants       perfmodel.MeasuredConstants `json:"constants"`
	Weak            []solver.HybridPoint        `json:"weak"`
	Strong          []perfmodel.ScalingPoint    `json:"strong"`
	ParityRanks     int                         `json:"parity_ranks"`
	ParityProjected float64                     `json:"parity_projected_step_sec"`
	ParityMeasured  float64                     `json:"parity_measured_step_sec"`
	ParityRelErr    float64                     `json:"parity_rel_err"`
	ParityTol       float64                     `json:"parity_tol"`
	ParityAttempts  int                         `json:"parity_attempts"`
}

type scaleReport struct {
	GeneratedBy string          `json:"generated_by"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	NumCPU      int             `json:"num_cpu"`
	Warning     string          `json:"warning,omitempty"`
	Short       bool            `json:"short"`
	Worlds      []scaleWorldRow `json:"worlds"`
	Hybrid      scaleHybrid     `json:"hybrid"`
}

// scaleHeap returns the live heap after a full GC.
func scaleHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// scaleWorldSweep measures one rank count.
func scaleWorldSweep(P, rounds, reps, haloSteps int) scaleWorldRow {
	row := scaleWorldRow{
		Ranks:           P,
		TreeDepthHops:   2 * int(math.Ceil(math.Log2(float64(P)))),
		ConvoyDepthHops: 2 * P,
	}

	// World construction: the lazy-inbox fix makes this one slice of
	// atomic pointers, not P mutex+cond allocations.
	t0 := time.Now()
	for i := 0; i < 4; i++ {
		w := mpi.NewWorld(P)
		runtime.KeepAlive(w)
	}
	row.NewWorldSec = time.Since(t0).Seconds() / 4

	// Steady-state memory: heap attributable to one world after it has
	// exercised barriers, an Allreduce, and a ring exchange (inboxes and
	// barrier tree faulted in, pool warm), measured after Run returns so
	// goroutine stacks are gone.
	base := scaleHeap()
	w := mpi.NewWorld(P)
	w.Run(func(c *mpi.Comm) {
		c.Barrier()
		c.Allreduce([]float64{float64(c.Rank())}, mpi.Max)
		next, prev := (c.Rank()+1)%P, (c.Rank()-1+P)%P
		buf := mpi.GetBuffer(16)
		c.SendOwned(next, 1, buf)
		got, _ := c.MustRecvTake(prev, 1)
		mpi.PutBuffer(got)
	})
	row.PerRankBytes = float64(scaleHeap()-base) / float64(P)

	// Barrier and Allreduce rounds on the warm world. Host noise on a
	// shared core is episodic, so reps interleave the tree, the legacy
	// convoy, and the Allreduce — an episode inflates one rep of each
	// alike — and the minimum per-round time is kept. A warmup barrier
	// precedes each timed loop so the world's goroutine spawn (O(P),
	// paid once per Run) stays out of the round times.
	timed := func(warm, body func(c *mpi.Comm)) float64 {
		var sec float64
		w.Run(func(c *mpi.Comm) {
			warm(c)
			if c.Rank() == 0 {
				t0 = time.Now()
			}
			for i := 0; i < rounds; i++ {
				body(c)
			}
			if c.Rank() == 0 {
				sec = time.Since(t0).Seconds() / float64(rounds)
			}
		})
		return sec
	}
	tree, convoy, allred := math.Inf(1), math.Inf(1), math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		tree = math.Min(tree, timed(
			func(c *mpi.Comm) { c.Barrier() },
			func(c *mpi.Comm) { c.Barrier() }))
		convoy = math.Min(convoy, timed(
			func(c *mpi.Comm) { c.BarrierConvoy() },
			func(c *mpi.Comm) { c.BarrierConvoy() }))
		allred = math.Min(allred, timed(
			func(c *mpi.Comm) { c.Barrier() },
			func(c *mpi.Comm) { c.Allreduce([]float64{float64(c.Rank()), 0}, mpi.Max) }))
	}
	row.TreeBarrierRoundSec = tree
	row.ConvoyBarrierRoundSec = convoy
	row.AllreduceSec = allred
	row.TreePerRankNs = row.TreeBarrierRoundSec / float64(P) * 1e9
	row.ConvoyPerRankNs = row.ConvoyBarrierRoundSec / float64(P) * 1e9

	// Ring halo throughput: every rank lends a pooled buffer to its
	// successor and takes one from its predecessor (the zero-copy path),
	// with a barrier per step for a solver-like cadence.
	w.Run(func(c *mpi.Comm) {
		next, prev := (c.Rank()+1)%P, (c.Rank()-1+P)%P
		c.Barrier()
		if c.Rank() == 0 {
			t0 = time.Now()
		}
		for s := 0; s < haloSteps; s++ {
			buf := mpi.GetBuffer(16)
			c.SendOwned(next, s, buf)
			got, _ := c.MustRecvTake(prev, s)
			mpi.PutBuffer(got)
			c.Barrier()
		}
		if c.Rank() == 0 {
			row.HaloStepsPerSec = float64(haloSteps) / time.Since(t0).Seconds()
		}
	})
	return row
}

// scale benchmarks the 10k-rank runtime and the hybrid model-execution
// scaling mode: per-rank memory and barrier latency across P in {64,
// 512, 4096, 10240}, tree vs convoy barrier, Allreduce latency, ring
// halo throughput, and the hybrid weak/strong curves with the P=64
// projection-vs-real parity gate. Gates are enforced in full mode only;
// -short runs a reduced sweep for CI smoke. Writes BENCH_8.json (or
// outPath).
func scale(outPath string, short bool) {
	header("Scale: 10k-rank runtime + hybrid model-execution scaling")
	rep := scaleReport{
		GeneratedBy: "cmd/benchtab -exp scale",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Short:       short,
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.GOMAXPROCS == 1 {
		rep.Warning = "GOMAXPROCS=1: rank goroutines serialize, so barrier rounds measure aggregate " +
			"work, not parallel latency; the per-rank normalization and the tree-vs-convoy comparison " +
			"remain fair (both serialize alike), and the hybrid curves price a modeled cluster, not this host"
		fmt.Printf("WARNING: %s\n", rep.Warning)
	}

	ranks := []int{64, 512, 4096, 10240}
	rounds, reps, haloSteps := 10, 3, 30
	if short {
		rounds, reps, haloSteps = 5, 2, 8
	}
	fmt.Printf("\n%-7s %12s %12s %14s %14s %12s %12s %12s %12s\n",
		"ranks", "newworld_us", "B/rank", "tree_us/rnd", "convoy_us/rnd",
		"tree_ns/rk", "convoy_ns/rk", "allred_us", "halo_stp/s")
	for _, P := range ranks {
		row := scaleWorldSweep(P, rounds, reps, haloSteps)
		rep.Worlds = append(rep.Worlds, row)
		fmt.Printf("%-7d %12.1f %12.0f %14.1f %14.1f %12.0f %12.0f %12.1f %12.1f\n",
			P, row.NewWorldSec*1e6, row.PerRankBytes,
			row.TreeBarrierRoundSec*1e6, row.ConvoyBarrierRoundSec*1e6,
			row.TreePerRankNs, row.ConvoyPerRankNs,
			row.AllreduceSec*1e6, row.HaloStepsPerSec)
	}

	// Hybrid model-execution scaling: measure constants on sampled real
	// executions, extrapolate the weak/strong curves, and anchor them
	// with the P=64 projection-vs-real parity check.
	cfg := solver.HybridConfig{
		PerRank:     grid.Dims{NX: 10, NY: 10, NZ: 10},
		SampleRanks: 8,
		Steps:       10,
		Reps:        3,
		Ranks:       ranks,
	}
	if short {
		cfg.Reps = 2
	}
	g := cfg.PerRank
	q := cvm.SoCal(float64(g.NX)*100*8, float64(g.NY)*100*8, float64(g.NZ)*100*4, 500)

	rep.Hybrid.ParityRanks = 64
	rep.Hybrid.ParityTol = 0.15
	// Host noise on a shared core is episodic, so the full-mode gate
	// retries: a biased projection fails every attempt, a slow episode
	// at most one or two. Short mode records a single attempt ungated.
	attempts := 4
	if short {
		attempts = 1
	}
	var hs *solver.HybridScaling
	for attempt := 1; attempt <= attempts; attempt++ {
		var err error
		hs, err = solver.HybridRun(q, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: scale: %v\n", err)
			os.Exit(1)
		}
		var proj float64
		for _, pt := range hs.Weak {
			if pt.Ranks == rep.Hybrid.ParityRanks {
				proj = pt.HostProjStepSec
			}
		}
		measured, err := solver.RunFullWeakPoint(q, cfg, rep.Hybrid.ParityRanks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: scale: %v\n", err)
			os.Exit(1)
		}
		rep.Hybrid.ParityProjected = proj
		rep.Hybrid.ParityMeasured = measured
		rep.Hybrid.ParityRelErr = math.Abs(proj-measured) / measured
		rep.Hybrid.ParityAttempts = attempt
		fmt.Printf("\nparity attempt %d: P=%d projected %.4g s/step, measured %.4g s/step, rel err %.1f%%\n",
			attempt, rep.Hybrid.ParityRanks, proj, measured, 100*rep.Hybrid.ParityRelErr)
		if rep.Hybrid.ParityRelErr <= rep.Hybrid.ParityTol {
			break
		}
	}
	rep.Hybrid.Constants = hs.Constants
	rep.Hybrid.Weak = hs.Weak
	rep.Hybrid.Strong = hs.Strong

	fmt.Printf("\nhybrid weak scaling (per-rank %dx%dx%d, %d sampled ranks execute for real):\n",
		g.NX, g.NY, g.NZ, cfg.SampleRanks)
	fmt.Printf("%-7s %-12s %14s %10s %10s %16s\n",
		"ranks", "topo", "virt_s/step", "eff", "Tflops", "hostproj_s/step")
	for _, pt := range hs.Weak {
		fmt.Printf("%-7d %-12s %14.4g %10.3f %10.3f %16.4g\n",
			pt.Ranks, fmt.Sprintf("%dx%dx%d", pt.Topo[0], pt.Topo[1], pt.Topo[2]),
			pt.StepSec, pt.Efficiency, pt.Tflops, pt.HostProjStepSec)
	}
	fmt.Printf("\nhybrid strong scaling (global %v cells fixed):\n", hs.Weak[len(hs.Weak)-1].Global)
	fmt.Printf("%-7s %14s %10s %10s\n", "ranks", "s/step", "speedup", "eff")
	for _, sp := range hs.Strong {
		fmt.Printf("%-7d %14.4g %10.1f %10.3f\n", sp.Cores, sp.StepTime, sp.Speedup, sp.Efficiency)
	}

	// Full-mode gates.
	if !short {
		fail := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "benchtab: scale: "+format+"\n", args...)
			os.Exit(1)
		}
		var r64, r10k scaleWorldRow
		for _, row := range rep.Worlds {
			if row.PerRankBytes >= 10*1024 {
				fail("P=%d steady-state %.0f B/rank >= 10 KB", row.Ranks, row.PerRankBytes)
			}
			if row.Ranks == 64 {
				r64 = row
			}
			if row.Ranks == 10240 {
				r10k = row
			}
		}
		// Sub-linear latency: the tree's per-rank barrier cost must stay
		// bounded (within a scheduler-pressure factor) as P grows 160x —
		// i.e. the round is O(P polylog P) aggregate, not O(P^2). A
		// centralized barrier that rescanned waiters per arrival would
		// blow through this immediately.
		if r10k.TreePerRankNs > 8*r64.TreePerRankNs {
			fail("tree per-rank barrier cost grew %.1fx from P=64 to P=10240 (want bounded)",
				r10k.TreePerRankNs/r64.TreePerRankNs)
		}
		if r10k.HaloStepsPerSec < 5 {
			fail("P=10240 ring halo %.1f steps/s < 5", r10k.HaloStepsPerSec)
		}
		if rep.Hybrid.ParityRelErr > rep.Hybrid.ParityTol {
			fail("hybrid parity rel err %.1f%% > %.0f%% after %d attempts",
				100*rep.Hybrid.ParityRelErr, 100*rep.Hybrid.ParityTol, rep.Hybrid.ParityAttempts)
		}
		fmt.Printf("\nall scale gates passed\n")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: scale: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: scale: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", outPath)
}
