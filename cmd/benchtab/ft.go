package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core/fd"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/ft"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

// ftRun is one (comm model, checkpoint interval) cell of the recovery-cost
// sweep: a chaos run with injected rank crashes next to the expected cost
// from the checkpoint/restart model behind Young's formula.
type ftRun struct {
	Model            string  `json:"comm_model"`
	Interval         int     `json:"checkpoint_interval_steps"`
	Faults           int     `json:"injected_faults"`
	Recoveries       int     `json:"recoveries"`
	Rebuilds         int     `json:"rebuilds"`
	RestartSteps     []int   `json:"restart_steps"`
	Checkpoints      int     `json:"checkpoints"`
	ReplayedSteps    int     `json:"replayed_steps"`
	ExpectedReplayed float64 `json:"expected_replayed_steps"` // faults * interval/2
	CheckpointSec    float64 `json:"checkpoint_sec"`
	RecoverySec      float64 `json:"recovery_sec"`
	WallSec          float64 `json:"wall_sec"`
	OverheadFrac     float64 `json:"overhead_frac"` // wall vs failure-free wall
	BitIdentical     bool    `json:"bit_identical"` // vs failure-free run
}

type ftReport struct {
	GeneratedBy   string  `json:"generated_by"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
	Global        string  `json:"global"`
	Ranks         int     `json:"ranks"`
	Steps         int     `json:"steps"`
	FaultsPerRun  int     `json:"faults_per_run"`
	MTBFSteps     float64 `json:"mtbf_steps"`
	CkptCostSteps float64 `json:"checkpoint_cost_steps"`
	YoungInterval int     `json:"young_optimal_interval_steps"`
	Runs          []ftRun `json:"runs"`
}

// ftOptions is the chaos-sweep scenario: the soak fixture of the ft
// package scaled up in steps so several checkpoint intervals fit.
func ftOptions(topo mpi.Cart, comm solver.CommModel, steps int) solver.Options {
	g := grid.Dims{NX: 20, NY: 20, NZ: 14}
	src := source.PointSource{
		GI: 10, GJ: 10, GK: 7, M0: 1e15,
		Tensor: source.Explosion, STF: source.GaussianPulse(0.08, 0.02),
	}
	return solver.Options{
		Global: g, H: 100, Steps: steps, Topo: topo, Comm: comm,
		Variant: fd.Precomp, ABC: solver.SpongeABC, SpongeWidth: 4,
		FreeSurface: true, Attenuation: true,
		Sources:   []source.SampledSource{src.Sample(0.002, 200)},
		Receivers: [][3]int{{5, 10, 7}, {15, 10, 7}, {10, 10, 2}},
		TrackPGV:  true,
		Telemetry: &telemetry.Options{},
	}
}

func ftFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e8, MDSLatency: 1e-4, MDSConcurrent: 8})
}

func sameFTResult(ref, got *solver.Result) bool {
	if got == nil || len(got.Seismograms) != len(ref.Seismograms) {
		return false
	}
	for r := range ref.Seismograms {
		if len(got.Seismograms[r]) != len(ref.Seismograms[r]) {
			return false
		}
		for n, v := range ref.Seismograms[r] {
			if got.Seismograms[r][n] != v {
				return false
			}
		}
	}
	for _, pair := range [][2][]float64{
		{ref.PGVH, got.PGVH}, {ref.PGVX, got.PGVX},
		{ref.PGVY, got.PGVY}, {ref.PGVZ, got.PGVZ},
	} {
		if len(pair[1]) != len(pair[0]) {
			return false
		}
		for i, v := range pair[0] {
			if pair[1][i] != v {
				return false
			}
		}
	}
	return true
}

// ftExp measures the recovery cost of coordinated checkpoint/restart as a
// function of checkpoint interval, per comm model, under two injected
// whole-rank crashes, and compares the measured lost work against the
// expected interval/2 per fault that Young's formula minimizes. Writes
// BENCH_5.json (or outPath).
func ftExp(outPath string, short bool) {
	header("FT: recovery cost vs checkpoint interval under injected rank crashes")
	topo := mpi.NewCart(2, 1, 1)
	steps := 120
	intervals := []int{4, 8, 16, 32}
	if short {
		steps = 48
		intervals = []int{8, 16}
	}
	rep := ftReport{
		GeneratedBy: "cmd/benchtab -exp ft",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Ranks:       topo.Size(),
		Steps:       steps,
	}

	models := []struct {
		name  string
		model solver.CommModel
	}{
		{"async", solver.Asynchronous},
		{"async-reduced", solver.AsyncReduced},
	}

	fmt.Printf("%-14s %9s %7s %6s %9s %10s %10s %9s %5s\n",
		"model", "interval", "faults", "recov", "replayed", "expected", "ckpt_s", "recov_s", "bitid")
	for _, m := range models {
		opt := ftOptions(topo, m.model, steps)
		rep.Global = fmt.Sprintf("%dx%dx%d", opt.Global.NX, opt.Global.NY, opt.Global.NZ)

		// Failure-free reference for bit-identity and baseline wall time.
		t0 := time.Now()
		ref, err := solver.Run(cvm.SoCal(2000, 2000, 1400, 400), opt)
		if err != nil {
			panic(err)
		}
		refWall := time.Since(t0).Seconds()

		// Pilot clean harness run: counts the per-rank send budget so the
		// two crash points can be placed deterministically mid-run.
		_, pilot, err := ft.RunWorld(ft.WorldOptions{
			Solver: opt, Query: cvm.SoCal(2000, 2000, 1400, 400),
			FS: ftFS(), Dir: "ckpt", Interval: 8,
			Chaos: &mpi.ChaosPlan{Seed: 1},
		})
		if err != nil {
			panic(err)
		}
		perRankSends := float64(pilot.Chaos.Delivered) / float64(topo.Size())

		for _, k := range intervals {
			chaos := &mpi.ChaosPlan{
				Seed: 41,
				CrashAtSend: map[int]uint64{
					0: uint64(perRankSends * 0.45),
					1: uint64(perRankSends * 0.80),
				},
			}
			t1 := time.Now()
			res, stats, err := ft.RunWorld(ft.WorldOptions{
				Solver: opt, Query: cvm.SoCal(2000, 2000, 1400, 400),
				FS: ftFS(), Dir: "ckpt", Interval: k, Chaos: chaos,
			})
			if err != nil {
				panic(fmt.Sprintf("ft run (model %s interval %d): %v", m.name, k, err))
			}
			wall := time.Since(t1).Seconds()
			faults := int(stats.Chaos.Crashes)
			run := ftRun{
				Model: m.name, Interval: k,
				Faults:       faults,
				Recoveries:   stats.Recoveries,
				Rebuilds:     stats.Rebuilds,
				RestartSteps: stats.RestartSteps,
				Checkpoints:  stats.Checkpoints,

				ReplayedSteps:    stats.ReplayedSteps,
				ExpectedReplayed: float64(faults) * float64(k) / 2,
				CheckpointSec:    res.Telemetry.Stat(telemetry.Checkpoint).TotalSec,
				RecoverySec:      res.Telemetry.Stat(telemetry.Recovery).TotalSec,
				WallSec:          wall,
				OverheadFrac:     (wall - refWall) / refWall,
				BitIdentical:     sameFTResult(ref, res),
			}
			rep.Runs = append(rep.Runs, run)
			fmt.Printf("%-14s %9d %7d %6d %9d %10.1f %10.3g %9.3g %5v\n",
				m.name, k, run.Faults, run.Recoveries, run.ReplayedSteps,
				run.ExpectedReplayed, run.CheckpointSec, run.RecoverySec, run.BitIdentical)

			// Young's inputs, priced from the async sweep's middle cell:
			// checkpoint cost in step units and the injected MTBF.
			if m.model == solver.Asynchronous && k == 8 && stats.Checkpoints > 0 && faults > 0 {
				stepSec := refWall / float64(steps)
				saveSec := run.CheckpointSec / float64(stats.Checkpoints)
				rep.CkptCostSteps = saveSec / stepSec
				rep.MTBFSteps = float64(steps) / float64(faults)
				rep.FaultsPerRun = faults
				rep.YoungInterval = ft.OptimalInterval(rep.CkptCostSteps, rep.MTBFSteps)
			}
		}
	}
	fmt.Printf("\nYoung: checkpoint cost %.2f steps, MTBF %.0f steps -> optimal interval %d steps\n",
		rep.CkptCostSteps, rep.MTBFSteps, rep.YoungInterval)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: write %s: %v\n", outPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs)\n", outPath, len(rep.Runs))
}
