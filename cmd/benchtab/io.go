package main

import (
	"crypto/md5"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/agg"
	"repro/internal/cvm"
	"repro/internal/grid"
	"repro/internal/meshgen"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
)

// ioIdentity is the end-to-end checksum gate on real bytes: the same
// distributed view written through the two-phase aggregator and through
// the per-rank path must produce bit-identical files, and the aggregator's
// write-time per-stripe checksums must equal the per-rank reference file's.
type ioIdentity struct {
	Ranks         int    `json:"ranks"`
	Aggregators   int    `json:"aggregators"`
	Writers       int    `json:"writers"`
	Bytes         int    `json:"bytes"`
	StripeCount   int    `json:"stripe_count"`
	StripeSize    int    `json:"stripe_size"`
	AggMD5        string `json:"agg_md5"`
	PerRankMD5    string `json:"per_rank_md5"`
	FilesEqual    bool   `json:"files_equal"`
	Stripes       int    `json:"stripes"`
	StripesEqual  bool   `json:"stripes_equal"`
	AggOpens      int    `json:"agg_opens"`
	PerRankOpens  int    `json:"per_rank_opens"`
	MaxConcOpens  int    `json:"max_concurrent_opens"`
	ShippedBytes  int    `json:"shipped_bytes"`
}

// ioModelRow is one point of the perfmodel 49%->2% curve: the M8 job at a
// Jaguar core count, I/O fraction of the step time with per-rank output
// (v6-era, IOAggregated=false) vs the aggregated path with 670 writer
// ranks.
type ioModelRow struct {
	Cores        int     `json:"cores"`
	PerRankFrac  float64 `json:"per_rank_io_frac"`
	AggFrac      float64 `json:"agg_io_frac"`
}

// ioSweepRow is one point of the virtual overhead sweep on the Jaguar PFS
// model: P ranks each buffering BytesPerRank of surface output over a
// ComputeSec interval. The per-rank path writes every recorded frame
// itself (P concurrent opens, the metadata storm); the aggregated path
// buffers the interval and flushes once through `writers` column streams
// under the open throttle.
type ioSweepRow struct {
	Ranks        int     `json:"ranks"`
	Aggregators  int     `json:"aggregators"`
	Writers      int     `json:"writers"`
	StripeCount  int     `json:"stripe_count"`
	StripeSize   int     `json:"stripe_size"`
	Throttle     int     `json:"throttle"`
	BytesPerRank int     `json:"bytes_per_rank"`
	ComputeSec   float64 `json:"compute_sec"`
	PerRankSec   float64 `json:"per_rank_io_sec"`
	AggSec       float64 `json:"agg_io_sec"`
	PerRankOver  float64 `json:"per_rank_overhead"`
	AggOver      float64 `json:"agg_overhead"`
	AggOpens     int     `json:"agg_opens"`
	MaxConcOpens int     `json:"max_concurrent_opens"`
	Waves        int     `json:"waves"`
}

// ioCliffRow is one point of the MDS-degradation cliff: n concurrent
// opens against the Jaguar MDS (raw) vs the same ops issued in throttled
// waves of <= 650.
type ioCliffRow struct {
	Opens            int     `json:"opens"`
	RawSec           float64 `json:"raw_sec"`
	RawPerOpenUs     float64 `json:"raw_per_open_us"`
	ThrottledSec     float64 `json:"throttled_sec"`
	ThrottledWaves   int     `json:"throttled_waves"`
	ThrottledMaxConc int     `json:"throttled_max_concurrent"`
}

// ioMeshgenRow is one NZ point of the out-of-core streaming extraction:
// the streamed file must be bit-identical to the all-at-once generator
// and the peak live mesh bytes per core must stay O(chunk), independent
// of NZ.
type ioMeshgenRow struct {
	NZ            int    `json:"nz"`
	MeshBytes     int    `json:"mesh_bytes"`
	PeakCoreBytes int    `json:"peak_core_bytes"`
	Rounds        int    `json:"rounds"`
	Writers       int    `json:"writers"`
	Opens         int    `json:"opens"`
	OneShotMD5    string `json:"one_shot_md5"`
	StreamedMD5   string `json:"streamed_md5"`
	Identical     bool   `json:"identical"`
}

type ioReport struct {
	GeneratedBy string `json:"generated_by"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	// Caveat documents what is measured vs modeled: identity and meshgen
	// sections move real bytes through the real aggregator; sweep and
	// cliff sections price ops on the simulated Lustre model (pfs).
	Caveat   string         `json:"caveat"`
	Identity ioIdentity     `json:"identity"`
	Model    []ioModelRow   `json:"model"`
	Sweep    []ioSweepRow   `json:"sweep"`
	Cliff    []ioCliffRow   `json:"cliff"`
	Meshgen  []ioMeshgenRow `json:"meshgen"`
	// GatesEnforced is false in -short mode: the smoke run reports the
	// same tables but only enforces the bit-identity gates.
	GatesEnforced bool `json:"gates_enforced"`
}

func ioFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtab: io: "+format+"\n", args...)
	os.Exit(1)
}

// ioIdentityRun writes one distributed view twice on the same simulated
// FS — through agg.WriteIndexed and through per-rank mpiio.WriteIndexed —
// and compares the files byte for byte and stripe for stripe.
func ioIdentityRun() ioIdentity {
	const ranks = 16
	g := grid.Dims{NX: 48, NY: 10, NZ: 7}
	const rec = 12
	fsys := pfs.New(pfs.Config{OSTs: 16, OSTBandwidth: 32e6, MDSLatency: 1e-3, MDSConcurrent: 8})
	fsys.SetStripe("out/", 8, 4<<10)
	cfg := agg.Config{Aggregators: 4}

	view := func(r int) ([]mpiio.Segment, []byte) {
		i0 := r * g.NX / ranks
		i1 := (r + 1) * g.NX / ranks
		segs := mpiio.BlockSegments(g, i0, i1, 0, g.NY, 0, g.NZ, rec)
		data := make([]byte, mpiio.TotalLen(segs))
		n := 0
		for _, s := range segs {
			for b := 0; b < s.Len; b++ {
				data[n] = byte((s.Off + b) * 131)
				n++
			}
		}
		return segs, data
	}

	var id ioIdentity
	stats := make([]agg.WriteStats, ranks)
	w := mpi.NewWorld(ranks)
	err := w.RunErr(func(c *mpi.Comm) error {
		segs, data := view(c.Rank())
		st, err := agg.WriteIndexed(c, fsys, "out/agg.bin", segs, data, cfg)
		if err != nil {
			return err
		}
		stats[c.Rank()] = st
		return mpiio.WriteIndexed(fsys, "out/ref.bin", segs, data)
	})
	if err != nil {
		ioFail("identity run: %v", err)
	}

	st := stats[0]
	id.Ranks, id.Aggregators, id.Writers = ranks, cfg.Aggregators, st.Writers
	id.Bytes = st.Bytes
	id.StripeCount, id.StripeSize = fsys.Stripe("out/agg.bin")
	id.AggOpens, id.MaxConcOpens = st.Opens, st.MaxConcurrentOpens
	id.PerRankOpens = ranks
	id.ShippedBytes = st.ShippedBytes

	readMD5 := func(path string) string {
		raw := make([]byte, fsys.Size(path))
		if err := fsys.ReadAt(path, 0, raw); err != nil {
			ioFail("identity read-back: %v", err)
		}
		sum := md5.Sum(raw)
		return hex.EncodeToString(sum[:])
	}
	id.AggMD5 = readMD5("out/agg.bin")
	id.PerRankMD5 = readMD5("out/ref.bin")
	id.FilesEqual = id.AggMD5 == id.PerRankMD5

	ref, err := agg.FileStripeChecksums(fsys, "out/ref.bin")
	if err != nil {
		ioFail("identity stripe checksums: %v", err)
	}
	id.Stripes = len(ref)
	id.StripesEqual = len(ref) == len(st.Stripes)
	for i := range ref {
		if !id.StripesEqual || st.Stripes[i] != ref[i] {
			id.StripesEqual = false
			break
		}
	}
	return id
}

// ioModelCurve is the perfmodel reproduction of §IV.E: the M8 job on
// Jaguar with per-rank output (the 49% regime) vs the aggregated path
// with 670 writer ranks (<2%).
func ioModelCurve() []ioModelRow {
	v72, _ := perfmodel.VersionByName("7.2")
	var rows []ioModelRow
	for _, cores := range []int{65610, 105456, 150120, 223074} {
		aggJob := perfmodel.M8Job(v72)
		aggJob.Cores = cores
		perRank := aggJob
		perRank.Version.IOAggregated = false
		perRank.WriterRanks = 0
		ba, bp := perfmodel.StepTime(aggJob), perfmodel.StepTime(perRank)
		rows = append(rows, ioModelRow{
			Cores:       cores,
			PerRankFrac: bp.IO / bp.Total(),
			AggFrac:     ba.IO / ba.Total(),
		})
	}
	return rows
}

// ioAggOps builds the aggregated flush op list for a fileBytes-long file
// striped (stripeCount x stripeSize): writers column streams, one open
// each, one contiguous write per stripe row per writer.
func ioAggOps(path string, fileBytes, stripeCount, stripeSize, writers int) []pfs.Op {
	var ops []pfs.Op
	for wr := 0; wr < writers; wr++ {
		c0 := wr * stripeCount / writers
		c1 := (wr + 1) * stripeCount / writers
		first := true
		for rowStart := 0; rowStart < fileBytes; rowStart += stripeCount * stripeSize {
			off := rowStart + c0*stripeSize
			end := rowStart + c1*stripeSize
			if end > fileBytes {
				end = fileBytes
			}
			if off >= fileBytes || end <= off {
				continue
			}
			ops = append(ops, pfs.Op{Path: path, Bytes: end - off, Off: off, Write: true, Open: first})
			first = false
		}
	}
	return ops
}

// ioSweep prices the M8-shaped output scenario on the Jaguar PFS model:
// per rank, `frames` recorded frames over computeSec of compute. The
// per-rank path opens the shared file on every rank at every frame; the
// aggregated path buffers the whole interval and flushes once through a
// throttled writer set.
func ioSweep(short bool) []ioSweepRow {
	ranksSweep := []int{1024, 4096, 16384}
	aggsSweep := []int{64, 256, 670}
	stripes := [][2]int{{256, 1 << 20}, {670, 1 << 20}}
	if short {
		ranksSweep = []int{1024, 4096}
		aggsSweep = []int{64, 670}
		stripes = stripes[:1]
	}
	const (
		frames       = 20
		bytesPerRank = 128 << 10 // buffered per rank per interval
		computeSec   = 10.0      // compute between flushes (M8-like step rate)
		throttle     = agg.DefaultOpenThrottle
	)
	var rows []ioSweepRow
	for _, P := range ranksSweep {
		for _, sc := range stripes {
			fsys := pfs.New(pfs.Jaguar())
			fsys.SetStripe("m8/", sc[0], sc[1])
			if err := fsys.WriteAt("m8/surface.bin", 0, []byte{0}); err != nil {
				ioFail("sweep: %v", err)
			}
			fileBytes := P * bytesPerRank

			// Per-rank path: every frame, every rank opens and writes its
			// own 1/frames share.
			frameOps := make([]pfs.Op, P)
			per := bytesPerRank / frames
			for r := 0; r < P; r++ {
				frameOps[r] = pfs.Op{Path: "m8/surface.bin", Bytes: per, Off: r * per, Write: true, Open: true}
			}
			perFrame := fsys.SimulatePhase(frameOps)
			perRankSec := perFrame.Elapsed * frames

			for _, A := range aggsSweep {
				writers := A
				if writers > sc[0] {
					writers = sc[0]
				}
				aggOps := ioAggOps("m8/surface.bin", fileBytes, sc[0], sc[1], writers)
				aggPhase, waves := agg.ThrottledPhase(fsys, aggOps, throttle)
				maxConc := writers
				if maxConc > throttle {
					maxConc = throttle
				}
				rows = append(rows, ioSweepRow{
					Ranks: P, Aggregators: A, Writers: writers,
					StripeCount: sc[0], StripeSize: sc[1], Throttle: throttle,
					BytesPerRank: bytesPerRank, ComputeSec: computeSec,
					PerRankSec:  perRankSec,
					AggSec:      aggPhase.Elapsed,
					PerRankOver: perRankSec / (perRankSec + computeSec),
					AggOver:     aggPhase.Elapsed / (aggPhase.Elapsed + computeSec),
					AggOpens:    writers, MaxConcOpens: maxConc, Waves: waves,
				})
			}
		}
	}
	return rows
}

// ioCliff sweeps the concurrent-open count across the MDS comfort limit:
// raw synchronized opens degrade quadratically past 650; the same ops in
// throttled waves stay on the linear branch.
func ioCliff() []ioCliffRow {
	var rows []ioCliffRow
	for _, n := range []int{64, 256, 650, 1300, 2600, 4096} {
		fsys := pfs.New(pfs.Jaguar())
		fsys.SetStripe("m8/", 670, 1<<20)
		if err := fsys.WriteAt("m8/mesh.bin", 0, []byte{0}); err != nil {
			ioFail("cliff: %v", err)
		}
		ops := make([]pfs.Op, n)
		for i := range ops {
			ops[i] = pfs.Op{Path: "m8/mesh.bin", Bytes: 64 << 10, Off: i * (64 << 10), Open: true}
		}
		raw := fsys.SimulatePhase(ops)
		thr, waves := agg.ThrottledPhase(fsys, ops, agg.DefaultOpenThrottle)
		maxConc := n
		if maxConc > agg.DefaultOpenThrottle {
			maxConc = agg.DefaultOpenThrottle
		}
		rows = append(rows, ioCliffRow{
			Opens:            n,
			RawSec:           raw.Elapsed,
			RawPerOpenUs:     raw.MDSTime / float64(n) * 1e6,
			ThrottledSec:     thr.Elapsed,
			ThrottledWaves:   waves,
			ThrottledMaxConc: maxConc,
		})
	}
	return rows
}

// ioMeshgen runs the real extraction both ways across an NZ sweep: the
// streamed out-of-core pipeline must match the one-shot generator bit for
// bit while its peak live bytes per core stay pinned to the chunk size.
func ioMeshgen(short bool) []ioMeshgenRow {
	nzs := []int{16, 48, 96}
	if short {
		nzs = []int{16, 32}
	}
	var rows []ioMeshgenRow
	for _, nz := range nzs {
		g := grid.Dims{NX: 12, NY: 8, NZ: nz}
		q := cvm.SoCal(float64(g.NX)*100, float64(g.NY)*100, float64(g.NZ)*100, 400)
		sp := meshgen.Spec{Path: "mesh/one.bin", Global: g, H: 100, Cores: 4}
		md5Of := func(fsys *pfs.FS, path string) string {
			raw := make([]byte, fsys.Size(path))
			if err := fsys.ReadAt(path, 0, raw); err != nil {
				ioFail("meshgen read-back: %v", err)
			}
			sum := md5.Sum(raw)
			return hex.EncodeToString(sum[:])
		}

		oneFS := pfs.New(pfs.Jaguar())
		oneFS.SetStripe("mesh/", 8, 2<<10)
		if _, err := meshgen.Generate(oneFS, q, sp); err != nil {
			ioFail("meshgen one-shot: %v", err)
		}

		strFS := pfs.New(pfs.Jaguar())
		strFS.SetStripe("mesh/", 8, 2<<10)
		ssp := meshgen.StreamSpec{Spec: sp, ChunkPlanes: 2, Agg: agg.Config{Aggregators: 4}}
		ssp.Path = "mesh/stream.bin"
		st, err := meshgen.GenerateStreamed(strFS, q, ssp)
		if err != nil {
			ioFail("meshgen streamed: %v", err)
		}

		row := ioMeshgenRow{
			NZ:            nz,
			MeshBytes:     g.Cells() * meshgen.RecBytes,
			PeakCoreBytes: st.PeakCoreBytes,
			Rounds:        st.Rounds,
			Writers:       st.Writers,
			Opens:         st.Opens,
			OneShotMD5:    md5Of(oneFS, "mesh/one.bin"),
			StreamedMD5:   md5Of(strFS, "mesh/stream.bin"),
		}
		row.Identical = row.OneShotMD5 == row.StreamedMD5
		rows = append(rows, row)
	}
	return rows
}

// ioExp benchmarks the two-phase aggregated I/O path: real-byte identity
// of the aggregated and per-rank files (checksummed end to end), the
// perfmodel and simulated-PFS reproductions of the paper's 49%->2%
// overhead collapse, the MDS-degradation cliff with and without the open
// throttle, and the out-of-core streaming mesh pipeline's bounded-memory
// guarantee. Writes BENCH_9.json (or outPath).
func ioExp(outPath string, short bool) {
	header("Two-phase aggregated I/O and out-of-core streaming (§IV.E)")
	rep := ioReport{
		GeneratedBy: "cmd/benchtab -exp io",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Caveat: "identity and meshgen sections move real bytes through the real aggregator on the " +
			"simulated PFS; sweep and cliff sections are virtual-time prices from the pfs Lustre " +
			"model (670 OSTs, 32 MB/s/OST, MDS quadratic past 650 opens) — they reproduce the " +
			"paper's overhead *shape*, not wall-clock on real hardware",
		GatesEnforced: !short,
	}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d\n", rep.GOMAXPROCS, rep.NumCPU)

	// --- end-to-end checksum identity (real bytes, always enforced) ---
	rep.Identity = ioIdentityRun()
	id := rep.Identity
	fmt.Printf("\nidentity: %d ranks -> %d writers, %d bytes, stripe %dx%d\n",
		id.Ranks, id.Writers, id.Bytes, id.StripeCount, id.StripeSize)
	fmt.Printf("  agg md5 %s  per-rank md5 %s  files equal %v\n", id.AggMD5, id.PerRankMD5, id.FilesEqual)
	fmt.Printf("  %d stripes, write-time checksums equal on-disk reference: %v\n", id.Stripes, id.StripesEqual)
	fmt.Printf("  opens %d (per-rank path: %d), max concurrent %d, shipped %d bytes\n",
		id.AggOpens, id.PerRankOpens, id.MaxConcOpens, id.ShippedBytes)
	if !id.FilesEqual || !id.StripesEqual {
		ioFail("aggregated file not bit-identical to per-rank reference")
	}
	if id.MaxConcOpens > agg.DefaultOpenThrottle {
		ioFail("identity run exceeded the open throttle: %d", id.MaxConcOpens)
	}

	// --- perfmodel 49% -> <2% curve ---
	rep.Model = ioModelCurve()
	fmt.Printf("\n%-9s %18s %14s  (M8 on Jaguar, perfmodel)\n", "cores", "per-rank IO frac", "agg IO frac")
	for _, r := range rep.Model {
		fmt.Printf("%-9d %18.3f %14.4f\n", r.Cores, r.PerRankFrac, r.AggFrac)
	}

	// --- virtual overhead sweep on the simulated Lustre ---
	rep.Sweep = ioSweep(short)
	fmt.Printf("\n%-7s %6s %8s %11s %9s %12s %12s %9s %6s\n",
		"ranks", "aggs", "writers", "stripe", "throttle", "per-rank ovh", "agg ovh", "maxconc", "waves")
	for _, r := range rep.Sweep {
		fmt.Printf("%-7d %6d %8d %7dx%-3s %9d %11.1f%% %11.2f%% %9d %6d\n",
			r.Ranks, r.Aggregators, r.Writers, r.StripeCount, "1M", r.Throttle,
			100*r.PerRankOver, 100*r.AggOver, r.MaxConcOpens, r.Waves)
	}

	// --- MDS cliff ---
	rep.Cliff = ioCliff()
	fmt.Printf("\n%-7s %12s %16s %14s %7s  (MDS cliff at %d opens)\n",
		"opens", "raw s", "raw us/open", "throttled s", "waves", agg.DefaultOpenThrottle)
	for _, r := range rep.Cliff {
		fmt.Printf("%-7d %12.5f %16.2f %14.5f %7d\n",
			r.Opens, r.RawSec, r.RawPerOpenUs, r.ThrottledSec, r.ThrottledWaves)
	}

	// --- streaming out-of-core meshgen (real bytes, identity enforced) ---
	rep.Meshgen = ioMeshgen(short)
	fmt.Printf("\n%-5s %11s %10s %7s %7s %6s %10s\n",
		"NZ", "mesh bytes", "peak/core", "rounds", "writers", "opens", "identical")
	for _, r := range rep.Meshgen {
		fmt.Printf("%-5d %11d %10d %7d %7d %6d %10v\n",
			r.NZ, r.MeshBytes, r.PeakCoreBytes, r.Rounds, r.Writers, r.Opens, r.Identical)
		if !r.Identical {
			ioFail("NZ=%d: streamed mesh differs from one-shot generator", r.NZ)
		}
	}
	for _, r := range rep.Meshgen[1:] {
		if r.PeakCoreBytes != rep.Meshgen[0].PeakCoreBytes {
			ioFail("peak core bytes grew with NZ: %d at NZ=%d vs %d at NZ=%d",
				r.PeakCoreBytes, r.NZ, rep.Meshgen[0].PeakCoreBytes, rep.Meshgen[0].NZ)
		}
	}

	// --- full-mode gates: the paper's overhead shape, throttle ceiling ---
	if rep.GatesEnforced {
		sawStorm := false
		for _, r := range rep.Sweep {
			if r.MaxConcOpens > r.Throttle {
				ioFail("sweep point ranks=%d aggs=%d: %d concurrent opens > throttle %d",
					r.Ranks, r.Aggregators, r.MaxConcOpens, r.Throttle)
			}
			if r.PerRankOver >= 0.30 {
				sawStorm = true
				if r.AggOver >= 0.05 {
					ioFail("ranks=%d aggs=%d: per-rank overhead %.1f%% but aggregated %.1f%% >= 5%%",
						r.Ranks, r.Aggregators, 100*r.PerRankOver, 100*r.AggOver)
				}
			}
		}
		if !sawStorm {
			ioFail("no sweep point reached 30%% per-rank overhead — the 49%%->2%% gate is vacuous")
		}
		last := rep.Model[len(rep.Model)-1]
		if last.PerRankFrac < 0.30 || last.AggFrac >= 0.05 {
			ioFail("model curve at %d cores: per-rank %.3f / agg %.4f, want >=0.30 / <0.05",
				last.Cores, last.PerRankFrac, last.AggFrac)
		}
		var at650, atMax ioCliffRow
		for _, r := range rep.Cliff {
			if r.Opens == agg.DefaultOpenThrottle {
				at650 = r
			}
			if r.Opens > atMax.Opens {
				atMax = r
			}
		}
		if atMax.RawPerOpenUs < 2*at650.RawPerOpenUs {
			ioFail("no MDS cliff: %.2f us/open at %d vs %.2f at 650",
				atMax.RawPerOpenUs, atMax.Opens, at650.RawPerOpenUs)
		}
		if atMax.ThrottledSec >= atMax.RawSec {
			ioFail("throttle did not flatten the cliff at %d opens (%.5fs vs %.5fs)",
				atMax.Opens, atMax.ThrottledSec, atMax.RawSec)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		ioFail("%v", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		ioFail("%v", err)
	}
	fmt.Printf("\nreport written to %s\n", outPath)
}
