// Command awp-run executes a wave-propagation simulation from command-line
// flags: grid, spacing, step count, rank count, communication model, ABC
// choice and a point source, printing seismograms summary and PGV output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/awp"
)

func main() {
	nx := flag.Int("nx", 48, "grid cells in x")
	ny := flag.Int("ny", 48, "grid cells in y")
	nz := flag.Int("nz", 32, "grid cells in z")
	h := flag.Float64("h", 200, "grid spacing, m")
	steps := flag.Int("steps", 300, "time steps")
	ranks := flag.Int("ranks", 1, "MPI ranks (goroutines)")
	threads := flag.Int("threads", 1, "worker threads per rank (persistent pool, §IV.D)")
	copyHalo := flag.Bool("copy-halo", false, "use the legacy copying halo-message path instead of zero-copy")
	coalesce := flag.Bool("coalesce-halo", false, "send one coalesced halo message per neighbor per phase")
	comm := flag.String("comm", "async-reduced", "comm model: sync|async|async-reduced|overlap")
	abc := flag.String("abc", "sponge", "absorbing boundary: none|sponge|mpml")
	model := flag.String("model", "socal", "velocity model: socal|layered|rock")
	variant := flag.String("variant", "", "stencil kernel: naive|recip|precomp|blocked|unrolled|fused, auto (per-machine autotuner), or empty for the blocked default")
	jblock := flag.Int("jblock", 0, "cache-blocking tile extent in j (0: default or autotuned)")
	kblock := flag.Int("kblock", 0, "cache-blocking tile extent in k (0: default or autotuned)")
	tdepth := flag.Int("tdepth", 0, "temporal tiling depth: steps per deep halo exchange, 1|2|4 (0: 1 or autotuned)")
	tunerCache := flag.String("tuner-cache", "", "kernel autotuner profile path (default: per-user cache dir)")
	cfl := flag.Float64("cfl", 0, "CFL safety factor for the automatic time step, in (0, 1] (0: 0.5)")
	lts := flag.Bool("lts", false, "multi-rate local time stepping: slow-medium ranks advance with dt*2^k and work-weighted cuts")
	ltsMaxK := flag.Int("lts-max-k", 0, "LTS rate-exponent cap: rates up to 2^k, 1|2 (0: 2)")
	ltsMaxRatio := flag.Int("lts-max-ratio", 0, "LTS max rate ratio across a rank seam, 2|4 (0: 2)")
	mw := flag.Float64("m0", 1e16, "seismic moment, N*m")
	srcI := flag.Int("si", -1, "source i (default center)")
	srcJ := flag.Int("sj", -1, "source j (default center)")
	srcK := flag.Int("sk", -1, "source k (default center)")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing) of the run to this file; implies telemetry")
	traceEvents := flag.Int("trace-events", 1<<15, "per-rank trace ring capacity (oldest events overwritten)")
	flag.Parse()

	if *srcI < 0 {
		*srcI = *nx / 2
	}
	if *srcJ < 0 {
		*srcJ = *ny / 2
	}
	if *srcK < 0 {
		*srcK = *nz / 2
	}

	dims := awp.Dims{NX: *nx, NY: *ny, NZ: *nz}
	var q awp.Model
	switch *model {
	case "socal":
		q = awp.SoCalModel(float64(*nx)**h, float64(*ny)**h, float64(*nz)**h, 500)
	case "layered":
		q = awp.LayeredModel()
	case "rock":
		q = awp.HomogeneousModel(awp.Material{Vp: 6000, Vs: 3464, Rho: 2700})
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	commModels := map[string]int{"sync": int(awp.Synchronous), "async": int(awp.Asynchronous),
		"async-reduced": int(awp.AsyncReduced), "overlap": int(awp.AsyncOverlap)}
	cm, ok := commModels[*comm]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown comm model %q\n", *comm)
		os.Exit(2)
	}
	abcKinds := map[string]int{"none": int(awp.NoABC), "sponge": int(awp.SpongeABC), "mpml": int(awp.MPMLABC)}
	ak, ok := abcKinds[*abc]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown abc %q\n", *abc)
		os.Exit(2)
	}

	sc := awp.Scenario{
		Dims: dims, H: *h, Steps: *steps, Ranks: *ranks,
		Threads: *threads, CopyHalo: *copyHalo, CoalesceHalo: *coalesce,
		Variant: *variant, JBlock: *jblock, KBlock: *kblock,
		TemporalDepth:  *tdepth,
		TunerCachePath: *tunerCache,
		CFL:            *cfl,
		LTS:            *lts,
		LTSMaxK:        *ltsMaxK, LTSMaxRateRatio: *ltsMaxRatio,
		FreeSurface:    true, Attenuation: true,
		Sources:   awp.PointMomentSource(*srcI, *srcJ, *srcK, *mw, 0.3, 0.08),
		Receivers: [][3]int{{*srcI, *srcJ, 0}, {*nx - 10, *srcJ, 0}},
		TrackPGV:  true,
	}
	if *trace != "" {
		sc.Telemetry = &awp.TelemetryOptions{TraceEvents: *traceEvents}
	}
	// The zero values of CommModel/ABCKind are already Synchronous/NoABC;
	// assign through the typed constants.
	switch cm {
	case int(awp.Synchronous):
		sc.Comm = awp.Synchronous
	case int(awp.Asynchronous):
		sc.Comm = awp.Asynchronous
	case int(awp.AsyncReduced):
		sc.Comm = awp.AsyncReduced
	case int(awp.AsyncOverlap):
		sc.Comm = awp.AsyncOverlap
	}
	switch ak {
	case int(awp.NoABC):
		sc.ABC = awp.NoABC
	case int(awp.SpongeABC):
		sc.ABC = awp.SpongeABC
	case int(awp.MPMLABC):
		sc.ABC = awp.MPMLABC
	}

	res, err := awp.Run(q, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	vname := *variant
	if vname == "" {
		vname = "blocked"
	}
	fmt.Printf("awp-run: %v grid, h=%.0f m, dt=%.4f s, %d steps, %d ranks x %d threads, comm=%s abc=%s variant=%s\n",
		dims, *h, res.Dt, res.Steps, *ranks, *threads, *comm, *abc, vname)
	fmt.Printf("epicentral PGVH: %.4e m/s; distant-receiver PGVH: %.4e m/s\n",
		awp.PGVH(res.Seismograms[0]), awp.PGVH(res.Seismograms[1]))
	var pgvMax float64
	for _, v := range res.PGVH {
		if v > pgvMax {
			pgvMax = v
		}
	}
	fmt.Printf("surface PGVH max: %.4e m/s\n", pgvMax)
	fmt.Printf("timing: comp=%.2fs comm=%.2fs sync=%.2fs output=%.2fs\n",
		res.Timing.Comp, res.Timing.Comm, res.Timing.Sync, res.Timing.Output)

	if *trace != "" {
		if err := writeTrace(*trace, res.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeTrace exports the telemetry report as Chrome trace-event JSON and
// prints the per-phase summary table.
func writeTrace(path string, rep *awp.TelemetryReport) error {
	if rep == nil {
		return fmt.Errorf("awp-run: no telemetry report in result")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %d events from %d ranks written to %s (%d dropped)\n",
		len(rep.Events), rep.Ranks, path, rep.DroppedEvents)
	fmt.Printf("%-12s %10s %12s %14s %14s\n", "phase", "spans", "total_s", "mean_s/step", "p99_s/step")
	for _, ps := range rep.Phases {
		if ps.Spans == 0 {
			continue
		}
		fmt.Printf("%-12s %10d %12.6f %14.9f %14.9f\n",
			ps.Phase, ps.Spans, ps.TotalSec, ps.MeanSec, ps.P99Sec)
	}
	return nil
}
