// Command farm runs the fault-tolerant hazard-service ensemble farm: a
// Latin-hypercube rupture-scenario ensemble is computed over a
// supervised worker fleet (retry with backoff, per-job deadlines,
// per-class circuit breakers, content-addressed artifact store) and the
// resulting PGV maps and hazard products are served over HTTP with
// admission control and graceful degradation.
//
// Batch mode (default) computes the ensemble, audits the store and
// prints a stats summary. With -serve the process then stays up serving
// /hazard, /map and /status. -chaos arms the service-level fault storm
// (worker crashes, hung jobs, artifact corruption); -pfs-faults adds a
// parallel-filesystem fault plan under the store; -ft runs each job as
// a checkpoint/restart world with the given rank count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/farm"
	"repro/internal/pfs"
	"repro/internal/telemetry"
)

func main() {
	n := flag.Int("n", 16, "ensemble size (Latin-hypercube scenario count)")
	seed := flag.Int64("seed", 1, "scenario sampling seed")
	workers := flag.Int("workers", 4, "worker fleet size")
	attempts := flag.Int("attempts", 6, "max attempts per scenario")
	deadline := flag.Duration("deadline", 10*time.Second, "per-job deadline")
	audit := flag.Int("audit", 2, "store audit rounds after the ensemble")
	ftRanks := flag.Int("ft", 0, "run each job as a checkpointed world with this many ranks (0 = plain solver)")
	chaos := flag.Bool("chaos", false, "arm the service-level fault storm (crash/hang/corrupt)")
	pfsFaults := flag.Bool("pfs-faults", false, "arm PFS fault injection under the artifact store")
	serve := flag.String("serve", "", "address to serve HTTP on after the ensemble (empty: batch mode)")
	jsonOut := flag.Bool("json", false, "print stats as JSON")
	flag.Parse()

	fs := pfs.New(pfs.Jaguar())
	if *pfsFaults {
		fs.InjectFaults(pfs.FaultPlan{
			Seed: 7, WriteFailProb: 0.05, ShortWriteProb: 0.03,
			TornWriteProb: 0.03, ReadFailProb: 0.02, MaxConsecutive: 2,
		})
	}
	store := farm.NewStore(fs, nil)

	spec := farm.DefaultSpec()
	if *ftRanks > 1 {
		spec.Ranks = *ftRanks
	}
	cfg := farm.Config{
		Spec: spec, Workers: *workers, MaxAttempts: *attempts,
		Deadline: *deadline,
		Rec:      telemetry.NewRecorder(0, 0),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *chaos {
		cfg.Chaos = &farm.ChaosPlan{
			Seed: 42, CrashProb: 0.1, HangProb: 0.05,
			HangDur: *deadline * 2, CorruptProb: 0.08, MaxFaultsPerJob: 2,
		}
	}
	if *ftRanks > 1 {
		cfg.FT = &farm.FTConfig{Interval: 10}
	}

	f := farm.New(cfg, store, farm.NewSurrogate(farm.DefaultRange()))
	defer f.Close()

	scs := farm.LatinHypercube(*n, *seed, farm.DefaultRange())
	t0 := time.Now()
	for _, sc := range scs {
		f.Submit(sc)
	}
	f.Wait()
	healed := f.Audit(*audit)
	wall := time.Since(t0)

	st := f.Stats()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			farm.Stats
			WallSec float64 `json:"wall_sec"`
			Healed  int     `json:"audit_healed"`
		}{st, wall.Seconds(), healed})
	} else {
		fmt.Printf("ensemble: %d scenarios, %d completed, %d failed in %.2fs (%.0f scenarios/h)\n",
			*n, st.Completed, st.Failed, wall.Seconds(),
			float64(st.Completed)/wall.Seconds()*3600)
		fmt.Printf("supervision: %d attempts, %d retries, %d worker crashes, %d deadline misses, %d breaker trips, %d corrupt re-queued (%d healed by audit)\n",
			st.Attempts, st.Retries, st.WorkerCrashes, st.DeadlineMisses,
			st.BreakerTrips, st.CorruptRequeued, healed)
	}
	if bad := store.VerifyAll(); len(bad) != 0 {
		fmt.Fprintf(os.Stderr, "farm: %d corrupt artifacts survived the audit: %v\n", len(bad), bad)
		os.Exit(1)
	}

	if *serve != "" {
		srv := farm.NewServer(f, farm.ServerConfig{MaxConcurrent: 16})
		fmt.Printf("serving /hazard /map /status on %s\n", *serve)
		if err := http.ListenAndServe(*serve, srv); err != nil {
			fmt.Fprintf(os.Stderr, "farm: serve: %v\n", err)
			os.Exit(1)
		}
	}
}
