// Command pipeline demonstrates the full AWP-ODC production workflow of
// Fig. 4 and Fig. 10 end to end on the simulated infrastructure:
//
//	CVM2MESH -> PetaMeshP -> dSrcG -> PetaSrcP -> AWM solve ->
//	aggregated output + checksums -> E2EaW archive transfer -> iRODS ingest
//
// printing the I/O and transfer statistics the paper reports for each
// stage (§III).
package main

import (
	"flag"
	"fmt"

	"repro/internal/agg"
	"repro/internal/core/solver"
	"repro/internal/core/source"
	"repro/internal/cvm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/meshgen"
	"repro/internal/meshpart"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/srcgen"
	"repro/internal/workflow"
)

func main() {
	nx := flag.Int("nx", 48, "grid cells in x")
	ny := flag.Int("ny", 32, "grid cells in y")
	nz := flag.Int("nz", 16, "grid cells in z")
	ranks := flag.Int("ranks", 4, "solver ranks")
	steps := flag.Int("steps", 200, "time steps")
	aggs := flag.Int("aggregators", 2, "aggregator (writer) ranks for two-phase collective output")
	throttle := flag.Int("throttle", agg.DefaultOpenThrottle, "max concurrent file opens per I/O phase")
	stripeCount := flag.Int("stripe-count", 0, "stripe count for output files (0: all OSTs)")
	stripeSize := flag.Int("stripe-size", 4<<20, "stripe size in bytes for output files")
	chunkPlanes := flag.Int("chunk-planes", 2, "z-planes held live per core in streaming mesh extraction")
	flag.Parse()

	aggCfg := agg.Config{Aggregators: *aggs, OpenThrottle: *throttle}
	h := 400.0
	g := grid.Dims{NX: *nx, NY: *ny, NZ: *nz}
	scratch := pfs.New(pfs.Jaguar())
	scratch.SetStripe("in/", 0, 1<<20) // wide stripe for shared input
	scratch.SetStripe("out/", *stripeCount, *stripeSize)
	q := cvm.SoCal(float64(g.NX-1)*h, float64(g.NY-1)*h, float64(g.NZ-1)*h, 500)

	// --- CVM2MESH (out-of-core streaming extraction, §IV.E) ---
	mst, err := meshgen.GenerateStreamed(scratch, q, meshgen.StreamSpec{
		Spec:        meshgen.Spec{Path: "in/mesh.bin", Global: g, H: h, Cores: 4},
		ChunkPlanes: *chunkPlanes,
		Agg:         aggCfg,
	})
	check(err)
	fmt.Printf("CVM2MESH:  %d points (%.1f MB) streamed in %d rounds, peak %.1f KB/core; "+
		"%d writers, %d opens; write phase %.3fs @ %.2f GB/s\n",
		mst.Points, float64(mst.Bytes)/1e6, mst.Rounds, float64(mst.PeakCoreBytes)/1e3,
		mst.Writers, mst.Opens, mst.WritePhase.Elapsed, mst.WritePhase.Throughput/1e9)

	// --- PetaMeshP (both I/O models) ---
	topo := mpi.NewCart(2, 2, 1)
	if topo.Size() != *ranks {
		topo = mpi.NewCart(*ranks, 1, 1)
	}
	dc, err := decomp.New(g, topo)
	check(err)
	pst, sst, err := meshpart.StreamPrePartition(scratch, "in/mesh.bin", "parts", g, dc, *throttle)
	check(err)
	fmt.Printf("PetaMeshP: stream-partitioned to %d files in %d waves, peak %.1f KB live; %.3fs\n",
		topo.Size(), sst.Waves, float64(sst.PeakBytes)/1e3, pst.Elapsed)
	_, ost, err := meshpart.OnDemand(scratch, "in/mesh.bin", g, dc, 2, 1)
	check(err)
	fmt.Printf("PetaMeshP: on-demand MPI-IO read %.1f MB in %.3fs (readers: 2)\n",
		float64(ost.Bytes)/1e6, ost.Elapsed)

	// --- dSrcG + PetaSrcP ---
	spec := source.HaskellSpec{
		GJ: g.NY / 2, I0: 8, I1: g.NX - 8, K0: 2, K1: 10,
		HypoI: g.NX - 12, HypoK: 6,
		H: h, Mw: 6.5, Vr: 2800, RiseTime: 1.0,
		Mu: 3.3e10, Dt: 0.02, NT: 500, TaperCells: 2,
	}
	srcs, err := spec.Generate()
	check(err)
	wst := srcgen.WriteSourceFile(scratch, "in/source.bin", srcs)
	fmt.Printf("dSrcG:     %d sub-faults (%.2f MB) written in %.4fs\n",
		len(srcs), float64(wst.Bytes)/1e6, wst.Elapsed)
	segs, err := srcgen.PartitionTemporal(srcs, 6)
	check(err)
	fmt.Printf("PetaSrcP:  memory high water %.2f MB vs %.2f MB unsplit (%d temporal loops)\n",
		float64(srcgen.HighWater(segs))/1e6, float64(srcgen.MemoryBytes(srcs))/1e6, len(segs))

	// --- AWM solve with in-band aggregated surface output ---
	res, err := solver.Run(q, solver.Options{
		Global: g, H: h, Steps: *steps, Topo: topo,
		Comm: solver.AsyncReduced, ABC: solver.SpongeABC, SpongeWidth: 6,
		FreeSurface: true, Attenuation: true,
		Sources: srcs, TrackPGV: true,
		Surface: &solver.SurfaceOptions{
			FS: scratch, Path: "out/surface.bin",
			Every: 10, FlushEvery: 5,
			Agg: aggCfg,
		},
	})
	check(err)
	var pgvMax float64
	for _, v := range res.PGVH {
		if v > pgvMax {
			pgvMax = v
		}
	}
	fmt.Printf("AWM:       %d steps on %d ranks; PGVH max %.3f m/s; comp %.2fs comm %.2fs\n",
		res.Steps, topo.Size(), pgvMax, res.Timing.Comp, res.Timing.Comm)

	// --- Two-phase aggregated surface output with per-stripe checksums ---
	so := res.Surface
	fmt.Printf("Output:    %.1f MB surface velocity in %d frames -> %d aggregated flushes "+
		"(%d opens, max %d concurrent), %d stripe checksums, I/O time %.3fs\n",
		float64(so.Bytes)/1e6, so.Frames, so.Flushes,
		so.Opens, so.MaxConcurrentOpens, len(so.Stripes), so.Phase.Elapsed)

	// --- E2EaW archive: transfer to the archive site and ingest ---
	src := workflow.Site{Name: "jaguar-scratch", FS: scratch}
	archive := workflow.Site{Name: "kraken-hpss", FS: pfs.New(pfs.Jaguar())}
	tr := workflow.NewTransferer(workflow.Link{
		BandwidthPerStream: 25e6, MaxStreams: 16, FailureRate: 0.05,
	}, 42)
	paths := []string{"out/surface.bin", "in/mesh.bin", "in/source.bin"}
	tst, err := tr.Transfer(src, archive, paths, 8)
	check(err)
	fmt.Printf("E2EaW:     %d files (%.1f MB) transferred at %.1f MB/s, %d retries, verified=%v\n",
		tst.Files, float64(tst.Bytes)/1e6, tst.Throughput/1e6, tst.Retries, tst.Verified)

	reg := workflow.NewRegistry()
	ingestTime, err := reg.Ingest(archive, paths, 8, 17.7e6)
	check(err)
	fmt.Printf("PIPUT:     %d objects registered in %.2fs (aggregated ingestion)\n",
		reg.Count(), ingestTime)
	for _, p := range paths {
		check(reg.VerifyReplica(archive, p))
	}
	fmt.Println("integrity: all archive replicas verified against registered MD5 checksums")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
